(** Paper-shaped result tables: one row per scheme/structure, one column
    per thread count, plus CSV export for plotting. *)

type series = {
  label : string;
  points : (int * float) list; (** (threads, value) *)
}

val print_table :
  title:string -> ?unit_label:string -> ?out:Format.formatter -> series list -> unit
(** Render an aligned table; columns are the union of thread counts. *)

val normalize : ?base_label:string -> series list -> series list
(** Divide every series pointwise by the baseline series (default: the
    first), producing the normalized-throughput view of Figures 1–2. *)

val to_csv : path:string -> title:string -> series list -> unit
(** Append a [title] block of [threads,label,value] rows to [path]. *)
