(** Workload mixes for set benchmarks, matching the paper's §5 scenarios:
    50% insert / 50% remove, 5% insert / 5% remove / 90% lookup, and
    lookup-only. *)

type mix = { add_pct : int; remove_pct : int }
(** Percentages of add and remove operations; the remainder are
    lookups. *)

val write_heavy : mix
(** 50i / 50r — the paper's leftmost plots. *)

val read_mostly : mix
(** 5i / 5r / 90l — the central plots. *)

val read_only : mix
(** 100% lookups — the rightmost plots. *)

val standard_mixes : (string * mix) list
(** The three mixes above, with their figure labels. *)

val pp_mix : Format.formatter -> mix -> unit

type op = Add | Remove | Lookup

val pick : Atomicx.Rng.t -> mix -> op
(** Draw one operation according to the mix. *)
