open Atomicx

type result = {
  threads : int;
  elapsed : float;
  total_ops : int;
  mops : float;
}

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let run ~threads ~duration ?(sample_every = 0.05) ?sampler ~worker () =
  let stop = Atomic.make false in
  let barrier = Barrier.create (threads + 1) in
  let doms =
    List.init threads (fun i ->
        Domain.spawn (fun () ->
            Registry.with_tid (fun tid ->
                Barrier.wait barrier;
                worker ~i ~tid ~stop:(fun () -> Atomic.get stop))))
  in
  Barrier.wait barrier;
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. duration in
  let rec wait () =
    let now = Unix.gettimeofday () in
    if now < deadline then begin
      (match sampler with Some f -> f () | None -> ());
      Thread.delay (min sample_every (deadline -. now));
      wait ()
    end
  in
  wait ();
  Atomic.set stop true;
  let elapsed = Unix.gettimeofday () -. t0 in
  let total_ops = List.fold_left (fun acc d -> acc + Domain.join d) 0 doms in
  {
    threads;
    elapsed;
    total_ops;
    mops = float_of_int total_ops /. elapsed /. 1e6;
  }
