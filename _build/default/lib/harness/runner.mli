(** Multi-domain throughput engine.

    Spawns worker domains, lines them up on a barrier, lets them run for
    a fixed wall-clock window, then stops them and aggregates operation
    counts.  The main thread can sample observables (live objects,
    unreclaimed counts) while the workers run — that is how the
    memory-footprint experiment of §5 is measured. *)

type result = {
  threads : int;
  elapsed : float; (** actual wall-clock seconds of the measured window *)
  total_ops : int;
  mops : float; (** million operations per second, all threads *)
}

val run :
  threads:int ->
  duration:float ->
  ?sample_every:float ->
  ?sampler:(unit -> unit) ->
  worker:(i:int -> tid:int -> stop:(unit -> bool) -> int) ->
  unit ->
  result
(** [run ~threads ~duration ~worker ()] runs [worker] on [threads]
    domains for [duration] seconds.  Each worker receives its spawn
    index, its registry tid, and a cheap [stop] predicate it must poll;
    it returns its operation count.  [sampler], if given, is invoked
    from the coordinating thread every [sample_every] seconds (default
    0.05) during the window. *)

val time : (unit -> 'a) -> float * 'a
(** Wall-clock a thunk. *)
