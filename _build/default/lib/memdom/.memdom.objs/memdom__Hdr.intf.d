lib/memdom/hdr.mli: Atomic Format
