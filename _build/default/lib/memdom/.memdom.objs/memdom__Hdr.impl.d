lib/memdom/hdr.ml: Atomic Format List Printf
