lib/memdom/stats.ml: Alloc Format List Unix
