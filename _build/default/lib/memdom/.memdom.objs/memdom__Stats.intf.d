lib/memdom/stats.mli: Alloc Format
