lib/memdom/alloc.ml: Atomic Format Hdr Option
