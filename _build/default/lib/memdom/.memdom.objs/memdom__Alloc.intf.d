lib/memdom/alloc.mli: Format Hdr
