type mode = System | Pool

type t = {
  mode : mode;
  name : string;
  uid_ctr : int Atomic.t;
  n_alloc : int Atomic.t;
  n_freed : int Atomic.t;
  era_clock : int Atomic.t;
}

let create ?(mode = System) name =
  {
    mode;
    name;
    uid_ctr = Atomic.make 0;
    n_alloc = Atomic.make 0;
    n_freed = Atomic.make 0;
    era_clock = Atomic.make 1;
  }

let mode t = t.mode
let label t = t.name

let hdr t ?label () =
  let uid = Atomic.fetch_and_add t.uid_ctr 1 in
  ignore (Atomic.fetch_and_add t.n_alloc 1);
  let label = Option.value label ~default:t.name in
  Hdr.make ~uid ~label ~strict:(t.mode = System) ~birth_era:(Atomic.get t.era_clock)

let free t h =
  Hdr.mark_freed h;
  ignore (Atomic.fetch_and_add t.n_freed 1)

let era t = Atomic.get t.era_clock
let bump_era t = 1 + Atomic.fetch_and_add t.era_clock 1
let allocated t = Atomic.get t.n_alloc
let freed t = Atomic.get t.n_freed
let live t = allocated t - freed t

let pp_stats fmt t =
  Format.fprintf fmt "%s: allocated=%d freed=%d live=%d" t.name (allocated t)
    (freed t) (live t)
