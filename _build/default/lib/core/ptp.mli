(** Pass-the-pointer (paper §3.1, Algorithm 2) — the paper's manual
    reclamation scheme, and the first with a *linear* O(Ht) bound on
    unreclaimed objects.

    Protection is hazard-pointer-like; retirement keeps no thread-local
    lists at all.  The retiring thread scans the published hazard
    pointers and, on a match, atomically swaps the object into the
    [handovers] slot paired with that hazard slot — passing
    responsibility to the protecting thread — then continues the scan
    with whatever the swap evicted.  Pointers only move forward through
    the scan order, so at most one object occupies each of the [t*H]
    handover slots plus one in each scanning hand: at most [t*(H+1)]
    unreclaimed objects at any time.

    Implements {!Reclaim.Scheme_intf.S}; usable anywhere the baseline
    schemes are (same functor shape). *)

val publish_with_exchange : bool ref
(** Ablation knob (§5): publish hazards with [Atomic.exchange] instead
    of [Atomic.set].  The paper traces the AMD-vs-Intel performance gap
    of its figures to exactly this instruction choice.  Default
    [false]. *)

val clear_handover : bool ref
(** Ablation knob: disable the drain of the handover slot when a hazard
    is cleared (Algorithm 2 lines 16–19, "optional" in the paper).
    Without it, objects can sit parked in handover slots of inactive
    threads indefinitely — the bound still holds but residual objects
    linger (see the [ablation] benchmark).  Default [true]. *)

module Make (N : Reclaim.Scheme_intf.NODE) :
  Reclaim.Scheme_intf.S with type node = N.t
