lib/core/orc.ml: Array Atomic Atomicx Fun Link List Memdom Padded Queue Registry
