lib/core/ptp.mli: Reclaim
