lib/core/ptp.ml: Array Atomic Atomicx Link Memdom Padded Reclaim Registry
