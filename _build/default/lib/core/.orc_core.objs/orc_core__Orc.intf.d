lib/core/orc.mli: Atomicx Memdom
