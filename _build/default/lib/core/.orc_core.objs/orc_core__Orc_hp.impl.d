lib/core/orc_hp.ml: Array Atomic Atomicx Fun Link List Memdom Orc Padded Registry
