type t = { min : int; max : int; mutable cur : int }

let create ?(min = 1) ?(max = 4096) () =
  if min < 1 || max < min then invalid_arg "Backoff.create";
  { min; max; cur = min }

let once t =
  if t.cur >= t.max then Thread.yield ()
  else
    for _ = 1 to t.cur do
      Domain.cpu_relax ()
    done;
  t.cur <- Stdlib.min t.max (t.cur * 2)

let reset t = t.cur <- t.min
