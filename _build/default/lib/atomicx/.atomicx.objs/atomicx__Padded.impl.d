lib/atomicx/padded.ml: Array Atomic Sys
