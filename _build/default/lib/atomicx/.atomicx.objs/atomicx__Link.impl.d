lib/atomicx/link.ml: Atomic Format
