lib/atomicx/backoff.mli:
