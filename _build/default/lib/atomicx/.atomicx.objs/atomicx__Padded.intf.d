lib/atomicx/padded.mli: Atomic
