lib/atomicx/barrier.mli:
