lib/atomicx/link.mli: Atomic Format
