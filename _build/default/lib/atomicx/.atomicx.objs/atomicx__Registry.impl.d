lib/atomicx/registry.ml: Array Atomic Domain Fun
