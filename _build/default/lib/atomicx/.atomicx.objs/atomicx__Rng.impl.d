lib/atomicx/rng.ml: Int64
