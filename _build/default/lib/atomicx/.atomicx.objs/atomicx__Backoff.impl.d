lib/atomicx/backoff.ml: Domain Stdlib Thread
