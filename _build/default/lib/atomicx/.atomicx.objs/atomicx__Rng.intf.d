lib/atomicx/rng.mli:
