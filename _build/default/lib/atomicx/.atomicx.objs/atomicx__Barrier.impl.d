lib/atomicx/barrier.ml: Atomic Domain
