lib/atomicx/registry.mli:
