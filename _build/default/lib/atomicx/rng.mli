(** SplitMix64 pseudo-random number generator.

    Each worker domain owns an independent stream seeded from a master
    seed and its thread id, so workload generation is deterministic and
    race-free without sharing any state between domains. *)

type t

val create : int -> t
(** [create seed] builds a generator from a 64-bit seed. *)

val split : t -> t
(** Derive an independent stream (used to give each domain its own). *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
