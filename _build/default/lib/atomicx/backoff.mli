(** Truncated exponential backoff for CAS retry loops.

    Lock-free algorithms under contention benefit from spinning a
    geometrically growing number of iterations between retries.  The
    paper's evaluation (§5) notes queues are "very sensitive to back-off
    strategies"; this module gives all data structures in the library the
    same, tunable policy so scheme comparisons are apples-to-apples. *)

type t

val create : ?min:int -> ?max:int -> unit -> t
(** [create ?min ?max ()] makes a fresh backoff state starting at [min]
    spin iterations (default 1) and saturating at [max] (default 4096). *)

val once : t -> unit
(** Spin for the current budget, then double it (up to the maximum).
    Yields to the OS scheduler once the budget saturates, which matters on
    machines with fewer cores than domains. *)

val reset : t -> unit
(** Reset the spin budget to its minimum, typically after a success. *)
