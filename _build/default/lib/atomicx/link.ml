type 'a state =
  | Null
  | Ptr of 'a
  | Mark of 'a
  | Flag of 'a
  | Tag of 'a
  | FlagTag of 'a
  | Poison

type 'a t = 'a state Atomic.t

let make st = Atomic.make st
let get l = Atomic.get l
let set l st = Atomic.set l st
let cas l expected desired = Atomic.compare_and_set l expected desired
let exchange l st = Atomic.exchange l st

let target = function
  | Null | Poison -> None
  | Ptr n | Mark n | Flag n | Tag n | FlagTag n -> Some n

let is_marked = function
  | Mark _ -> true
  | Null | Ptr _ | Flag _ | Tag _ | FlagTag _ | Poison -> false

let is_flagged = function
  | Flag _ | FlagTag _ -> true
  | Null | Ptr _ | Mark _ | Tag _ | Poison -> false

let is_tagged = function
  | Tag _ | FlagTag _ -> true
  | Null | Ptr _ | Mark _ | Flag _ | Poison -> false

let is_poison = function
  | Poison -> true
  | Null | Ptr _ | Mark _ | Flag _ | Tag _ | FlagTag _ -> false

let with_tag = function
  | Ptr n -> Tag n
  | Flag n -> FlagTag n
  | (Tag _ | FlagTag _ | Null | Poison | Mark _) as st -> st

let clean = function
  | Ptr n | Mark n | Flag n | Tag n | FlagTag n -> Ptr n
  | (Null | Poison) as st -> st

let same a b =
  match a, b with
  | Null, Null | Poison, Poison -> true
  | Ptr x, Ptr y | Mark x, Mark y | Flag x, Flag y | Tag x, Tag y
  | FlagTag x, FlagTag y ->
      x == y
  | (Null | Ptr _ | Mark _ | Flag _ | Tag _ | FlagTag _ | Poison), _ -> false

let pp pp_node fmt = function
  | Null -> Format.pp_print_string fmt "null"
  | Poison -> Format.pp_print_string fmt "poison"
  | Ptr n -> Format.fprintf fmt "ptr(%a)" pp_node n
  | Mark n -> Format.fprintf fmt "mark(%a)" pp_node n
  | Flag n -> Format.fprintf fmt "flag(%a)" pp_node n
  | Tag n -> Format.fprintf fmt "tag(%a)" pp_node n
  | FlagTag n -> Format.fprintf fmt "flagtag(%a)" pp_node n
