(* A cache line is 64-128 bytes; a spacer of 16 words keeps two
   consecutively allocated atomics from sharing one even with headers. *)
let spacer_words = 16

let atomic_array n v =
  Array.init n (fun _ ->
      let a = Atomic.make v in
      (* allocate a spacer so the next element lands further away; kept
         unreachable, reclaimed by the GC eventually — the point is only
         the allocation distance at creation time *)
      ignore (Sys.opaque_identity (Array.make spacer_words 0));
      a)

let atomic_matrix rows cols v =
  Array.init rows (fun _ ->
      ignore (Sys.opaque_identity (Array.make spacer_words 0));
      atomic_array cols v)
