(** Sense-reversing spin barrier.

    Benchmark runners use it to line up all worker domains on the same
    start instant so that throughput windows are comparable. *)

type t

val create : int -> t
(** [create n] makes a barrier for [n] participants. *)

val wait : t -> unit
(** Block (spinning) until all [n] participants have arrived.  Reusable:
    the barrier resets itself for the next round. *)
