type t = { parties : int; count : int Atomic.t; sense : bool Atomic.t }

let create parties =
  if parties < 1 then invalid_arg "Barrier.create";
  { parties; count = Atomic.make 0; sense = Atomic.make false }

let wait t =
  let my_sense = not (Atomic.get t.sense) in
  if Atomic.fetch_and_add t.count 1 = t.parties - 1 then begin
    Atomic.set t.count 0;
    Atomic.set t.sense my_sense
  end
  else
    while Atomic.get t.sense <> my_sense do
      Domain.cpu_relax ()
    done
