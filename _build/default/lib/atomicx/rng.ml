type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next_int64 t in
  { state = mix64 seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  let r = Int64.to_int (next_int64 t) land max_int in
  r mod bound

let float t =
  let r = Int64.to_int (next_int64 t) land ((1 lsl 53) - 1) in
  float_of_int r /. float_of_int (1 lsl 53)

let bool t = Int64.logand (next_int64 t) 1L = 1L
