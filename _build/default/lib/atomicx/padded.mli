(** Best-effort false-sharing mitigation for arrays of atomics.

    OCaml gives no layout control, but each [Atomic.t] is its own heap
    block, so interleaving spacer allocations between consecutive
    elements usually lands hot atomics on distinct cache lines.  The
    paper's schemes keep per-thread hazard and handover slots in exactly
    such arrays; spacing them out removes a systematic bias when
    comparing schemes.  Purely an allocation-pattern hint: semantics are
    identical to [Array.init n (fun _ -> Atomic.make v)]. *)

val atomic_array : int -> 'a -> 'a Atomic.t array
(** [atomic_array n v]: [n] atomics initialized to [v], allocated with
    cache-line-sized spacing between them. *)

val atomic_matrix : int -> int -> 'a -> 'a Atomic.t array array
(** [atomic_matrix rows cols v]: row-spaced matrix, rows padded apart —
    the [hp.(tid).(idx)] shape used by the schemes. *)
