(** Atomic links between nodes, with mark/flag/tag bits.

    In the C++ original a link is a raw [std::atomic<Node*>] whose low
    bits can carry deletion marks and whose CAS compares machine words.
    OCaml cannot tag pointers, so a link holds a small variant:

    - [Null] — no successor ([nullptr]),
    - [Ptr n] — plain ("clean") hard link to [n],
    - [Mark n] — hard link with the Harris-style logical-deletion mark,
    - [Flag n] / [Tag n] / [FlagTag n] — the two edge bits of the
      Natarajan–Mittal BST [22] (flag = child being deleted, tag = edge
      frozen for helping), in all their combinations,
    - [Poison] — CRF-skip-list poison: the owning node can no longer
      reach the structure and traversals must restart (paper §5).

    [Atomic.compare_and_set] compares the *box* physically, which is
    exactly the semantics the algorithms need: a CAS succeeds only
    against the precise value previously loaded.  A competitor writing a
    fresh box with the same logical content makes the CAS fail — a
    spurious retry, indistinguishable from ordinary contention, never a
    safety issue. *)

type 'a state =
  | Null
  | Ptr of 'a
  | Mark of 'a
  | Flag of 'a
  | Tag of 'a
  | FlagTag of 'a
  | Poison

type 'a t = 'a state Atomic.t

val make : 'a state -> 'a t
val get : 'a t -> 'a state
val set : 'a t -> 'a state -> unit

val cas : 'a t -> 'a state -> 'a state -> bool
(** [cas l expected desired] — physical comparison against [expected]. *)

val exchange : 'a t -> 'a state -> 'a state
(** Atomically replace the contents, returning the previous state. *)

val target : 'a state -> 'a option
(** The node a state points at, if any (every constructor with a payload
    points at it; [Null] and [Poison] point at nothing). *)

val is_marked : 'a state -> bool
(** [true] only for [Mark _]. *)

val is_flagged : 'a state -> bool
(** [true] for [Flag _] and [FlagTag _]. *)

val is_tagged : 'a state -> bool
(** [true] for [Tag _] and [FlagTag _]. *)

val is_poison : 'a state -> bool

val with_tag : 'a state -> 'a state
(** Set the tag bit, preserving target and flag ([Null]/[Poison]/[Mark]
    are returned unchanged — only BST edge states carry tags). *)

val clean : 'a state -> 'a state
(** Strip mark/flag/tag: [Ptr n] for any state targeting [n], [Null] or
    [Poison] unchanged. *)

val same : 'a state -> 'a state -> bool
(** Logical equality: same constructor and physically-equal target.  Used
    for algorithm conditions such as "[lnext == nullptr]" where the two
    states may live in different boxes. *)

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a state -> unit
