(** Natarajan & Mittal's lock-free external BST [22], parameterized by a
    manual reclamation scheme.

    Flag/tag edge bits drive deletes; a winning cleanup excises a frozen
    region in one CAS.  Because excision leaves interior edges
    untouched, hazard validation alone cannot detect a stale traversal —
    the excising thread poisons the region's edges before retiring
    (DESIGN.md §6.2) and traversals restart on poison.  Keys must be
    < [max_int - 2] (three infinity sentinels). *)

val inf0 : int
val inf1 : int
val inf2 : int

module Make (R : Reclaim.Scheme_intf.MAKER) : Intf.SET
