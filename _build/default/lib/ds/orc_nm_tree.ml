(** Natarajan & Mittal's lock-free external BST with OrcGC.

    Identical algorithm to {!Nm_tree}, but no retire logic at all: the
    winning ancestor CAS drops the successor's hard-link count and the
    destructor cascade reclaims the whole excised region — path nodes and
    flagged leaves alike — once their protections expire.  The surviving
    sibling subtree is safe because the CAS increments its root's count
    before the excised parent's link to it is dropped. *)

open Atomicx

let inf0 = Nm_tree.inf0
let inf1 = Nm_tree.inf1
let inf2 = Nm_tree.inf2

module Make () = struct
  type node = {
    key : int;
    left : node Link.t;
    right : node Link.t;
    hdr : Memdom.Hdr.t;
  }

  module O = Orc_core.Orc.Make (struct
    type t = node

    let hdr n = n.hdr

    let iter_links n f =
      f n.left;
      f n.right
  end)

  type t = {
    r : node;
    s : node;
    r_root : node Link.t;
    s_root : node Link.t;
    orc : O.t;
    alloc : Memdom.Alloc.t;
  }

  type seek_record = {
    mutable anc_edge : node Link.state;
    mutable par_edge : node Link.state;
  }

  let scheme_name = "orc"

  let key_of n =
    Memdom.Hdr.check_access n.hdr;
    n.key

  let left_of n =
    Memdom.Hdr.check_access n.hdr;
    n.left

  let right_of n =
    Memdom.Hdr.check_access n.hdr;
    n.right

  let child_link n key = if key < key_of n then left_of n else right_of n

  let create ?(mode = Memdom.Alloc.System) () =
    let alloc = Memdom.Alloc.create ~mode "orc_nm_tree" in
    let orc = O.create alloc in
    O.with_guard orc (fun g ->
        let leaf k =
          O.alloc_node g (fun hdr ->
              { key = k; left = Link.make Link.Null; right = Link.make Link.Null; hdr })
        in
        let l0 = leaf inf0 and l1 = leaf inf1 and l2 = leaf inf2 in
        let sp =
          O.alloc_node g (fun hdr ->
              {
                key = inf1;
                left = O.new_link g (Link.Ptr (O.Ptr.node_exn l0));
                right = O.new_link g (Link.Ptr (O.Ptr.node_exn l1));
                hdr;
              })
        in
        let s = O.Ptr.node_exn sp in
        let rp =
          O.alloc_node g (fun hdr ->
              {
                key = inf2;
                left = O.new_link g (Link.Ptr s);
                right = O.new_link g (Link.Ptr (O.Ptr.node_exn l2));
                hdr;
              })
        in
        let r = O.Ptr.node_exn rp in
        {
          r;
          s;
          r_root = O.new_link g (Link.Ptr r);
          s_root = O.new_link g (Link.Ptr s);
          orc;
          alloc;
        })

  (* seek with guard-scoped protections for (anc, succ, par, leaf, cur). *)
  let seek t g key ~anc ~succ ~par ~leaf ~cur =
    let sk = { anc_edge = Link.get t.r.left; par_edge = Link.Null } in
    O.load g t.r_root anc;
    O.load g t.s_root succ;
    O.load g t.s_root par;
    O.load g t.s.left leaf;
    sk.par_edge <- O.Ptr.state leaf;
    let rec walk () =
      let l = O.Ptr.node_exn leaf in
      match Link.target (Link.get (left_of l)) with
      | None -> () (* reached a leaf *)
      | Some _ ->
          O.load g (child_link l key) cur;
          if not (Link.is_tagged sk.par_edge) then begin
            O.assign g anc par;
            O.assign g succ leaf;
            sk.anc_edge <- sk.par_edge
          end;
          O.assign g par leaf;
          sk.par_edge <- O.Ptr.state cur;
          O.assign g leaf cur;
          walk ()
    in
    walk ();
    sk

  (* cleanup: tag the sibling edge, then swing the ancestor edge to the
     surviving sibling.  The CAS's automatic count transfer (inc sibling,
     dec successor) triggers the cascade that reclaims the region. *)
  let cleanup g key sk ~anc ~par ~wp =
    let p = O.Ptr.node_exn par in
    let child_l, sibling_l =
      if key < key_of p then (left_of p, right_of p)
      else (right_of p, left_of p)
    in
    let sibling_l =
      if Link.is_flagged (Link.get child_l) then sibling_l else child_l
    in
    let rec tag () =
      let s = Link.get sibling_l in
      if not (Link.is_tagged s) then
        if not (O.cas g sibling_l ~expected:s ~desired:(Link.with_tag s)) then
          tag ()
    in
    tag ();
    (* protect the survivor before granting it a new hard link *)
    O.load g sibling_l wp;
    let s = O.Ptr.state wp in
    match Link.target s with
    | None -> false (* sibling vanished: the region is gone; re-seek *)
    | Some w ->
        let desired = if Link.is_flagged s then Link.Flag w else Link.Ptr w in
        let anc_link = child_link (O.Ptr.node_exn anc) key in
        O.cas g anc_link ~expected:sk.anc_edge ~desired

  let check_key key =
    if key >= inf0 then invalid_arg "Orc_nm_tree: key must be < max_int - 2"

  let contains t key =
    check_key key;
    O.with_guard t.orc (fun g ->
        let anc = O.ptr g and succ = O.ptr g and par = O.ptr g in
        let leaf = O.ptr g and cur = O.ptr g in
        let _sk = seek t g key ~anc ~succ ~par ~leaf ~cur in
        key_of (O.Ptr.node_exn leaf) = key)

  let add t key =
    check_key key;
    O.with_guard t.orc @@ fun g ->
    let anc = O.ptr g and succ = O.ptr g and par = O.ptr g in
    let leaf = O.ptr g and cur = O.ptr g and wp = O.ptr g in
    let lp = O.ptr g and ip = O.ptr g in
    let rec loop () =
      let sk = seek t g key ~anc ~succ ~par ~leaf ~cur in
      let lf = O.Ptr.node_exn leaf in
      if key_of lf = key then false
      else begin
        let cl = child_link (O.Ptr.node_exn par) key in
        match sk.par_edge with
        | Link.Ptr l when l == lf ->
            let new_leaf =
              O.alloc_node_into g lp (fun hdr ->
                  {
                    key;
                    left = Link.make Link.Null;
                    right = Link.make Link.Null;
                    hdr;
                  })
            in
            let lkey = key_of lf in
            let internal =
              O.alloc_node_into g ip (fun hdr ->
                  if key < lkey then
                    {
                      key = lkey;
                      left = O.new_link g (Link.Ptr new_leaf);
                      right = O.new_link g sk.par_edge;
                      hdr;
                    }
                  else
                    {
                      key;
                      left = O.new_link g sk.par_edge;
                      right = O.new_link g (Link.Ptr new_leaf);
                      hdr;
                    })
            in
            if O.cas g cl ~expected:sk.par_edge ~desired:(Link.Ptr internal)
            then true
            else begin
              (match Link.get cl with
              | Link.Flag _ | Link.Tag _ | Link.FlagTag _ ->
                  ignore (cleanup g key sk ~anc ~par ~wp)
              | Link.Null | Link.Ptr _ | Link.Mark _ | Link.Poison -> ());
              loop ()
            end
        | Link.Flag _ | Link.Tag _ | Link.FlagTag _ ->
            ignore (cleanup g key sk ~anc ~par ~wp);
            loop ()
        | Link.Ptr _ | Link.Null | Link.Mark _ | Link.Poison -> loop ()
      end
    in
    loop ()

  let remove t key =
    check_key key;
    O.with_guard t.orc @@ fun g ->
    let anc = O.ptr g and succ = O.ptr g and par = O.ptr g in
    let leaf = O.ptr g and cur = O.ptr g and wp = O.ptr g in
    let rec injection () =
      let sk = seek t g key ~anc ~succ ~par ~leaf ~cur in
      let lf = O.Ptr.node_exn leaf in
      if key_of lf <> key then false
      else begin
        let cl = child_link (O.Ptr.node_exn par) key in
        match sk.par_edge with
        | Link.Ptr l when l == lf ->
            if O.cas g cl ~expected:sk.par_edge ~desired:(Link.Flag lf) then
              if cleanup g key sk ~anc ~par ~wp then true else pursue lf
            else injection ()
        | Link.Flag _ | Link.Tag _ | Link.FlagTag _ ->
            ignore (cleanup g key sk ~anc ~par ~wp);
            injection ()
        | Link.Ptr _ | Link.Null | Link.Mark _ | Link.Poison -> injection ()
      end
    and pursue lf =
      let sk = seek t g key ~anc ~succ ~par ~leaf ~cur in
      if O.Ptr.node_exn leaf != lf then true
      else if cleanup g key sk ~anc ~par ~wp then true
      else pursue lf
    in
    injection ()

  let to_list t =
    let rec walk acc n =
      match Link.target (Link.get n.left) with
      | None -> if n.key < inf0 then n.key :: acc else acc
      | Some l ->
          let r =
            match Link.target (Link.get n.right) with
            | Some r -> r
            | None -> assert false
          in
          walk (walk acc r) l
    in
    walk [] t.r

  let size t = List.length (to_list t)

  let destroy t =
    O.with_guard t.orc (fun g ->
        O.store g t.r_root Link.Null;
        O.store g t.s_root Link.Null)

  let unreclaimed t = O.unreclaimed t.orc
  let flush t = O.flush t.orc
  let alloc t = t.alloc
end
