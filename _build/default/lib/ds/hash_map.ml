(** Michael's lock-free hash table [18] — the second structure of the
    same paper that gives us the list: an array of lock-free list
    buckets, parameterized by a manual reclamation scheme.

    One scheme instance and one allocator serve all buckets (hazard
    indexes are per-thread, not per-bucket), and a single tail sentinel
    is shared by every bucket.  Bucket heads are root links, so the
    find/insert/delete windows are the same as in {!Michael_list}, just
    anchored at [buckets.(hash key)]. *)

open Atomicx

let default_buckets = 64

module Make (R : Reclaim.Scheme_intf.MAKER) = struct
  type node = { key : int; next : node Link.t; hdr : Memdom.Hdr.t }

  module S = R (struct
    type t = node

    let hdr n = n.hdr
  end)

  type t = {
    buckets : node Link.t array;
    tail : node; (* shared sentinel, never retired *)
    scheme : S.t;
    alloc : Memdom.Alloc.t;
  }

  let scheme_name = S.name

  let next_of n =
    Memdom.Hdr.check_access n.hdr;
    n.next

  let key_of n =
    Memdom.Hdr.check_access n.hdr;
    n.key

  let create ?(mode = Memdom.Alloc.System) () =
    let alloc = Memdom.Alloc.create ~mode "hash_map" in
    let scheme = S.create ~max_hps:4 alloc in
    let tail =
      { key = max_int; next = Link.make Link.Null; hdr = Memdom.Alloc.hdr alloc () }
    in
    {
      buckets = Array.init default_buckets (fun _ -> Link.make (Link.Ptr tail));
      tail;
      scheme;
      alloc;
    }

  (* Fibonacci hashing over the key. *)
  let bucket t key =
    t.buckets.((key * 0x2545F4914F6CDD1D) land max_int
               mod Array.length t.buckets)

  let target_exn st =
    match Link.target st with Some n -> n | None -> assert false

  (* Same window-find as Michael_list, anchored at the bucket head. *)
  let rec find t ~tid key =
    let prev_link = ref (bucket t key) in
    let curr_st = ref (S.get_protected t.scheme ~tid ~idx:0 !prev_link) in
    let restart () = find t ~tid key in
    let rec loop () =
      let curr = target_exn !curr_st in
      let next_st = S.get_protected t.scheme ~tid ~idx:1 (next_of curr) in
      if not (Link.get !prev_link == !curr_st) then restart ()
      else if Link.is_marked next_st then begin
        let unmarked =
          match Link.target next_st with
          | Some nx -> Link.Ptr nx
          | None -> Link.Null
        in
        if Link.cas !prev_link !curr_st unmarked then begin
          S.retire t.scheme ~tid curr;
          curr_st := unmarked;
          S.copy_protection t.scheme ~tid ~src:1 ~dst:0;
          loop ()
        end
        else restart ()
      end
      else if key_of curr >= key then (key_of curr = key, !prev_link, !curr_st)
      else begin
        S.copy_protection t.scheme ~tid ~src:0 ~dst:2;
        prev_link := next_of curr;
        curr_st := next_st;
        S.copy_protection t.scheme ~tid ~src:1 ~dst:0;
        loop ()
      end
    in
    loop ()

  let check_key key =
    if key = min_int || key = max_int then
      invalid_arg "Hash_map: key out of range"

  let contains t key =
    check_key key;
    let tid = Registry.tid () in
    S.begin_op t.scheme ~tid;
    let found, _, _ = find t ~tid key in
    S.end_op t.scheme ~tid;
    found

  let add t key =
    check_key key;
    let tid = Registry.tid () in
    S.begin_op t.scheme ~tid;
    let rec loop () =
      let found, prev_link, curr_st = find t ~tid key in
      if found then false
      else
        let node =
          { key; next = Link.make curr_st; hdr = Memdom.Alloc.hdr t.alloc () }
        in
        if Link.cas prev_link curr_st (Link.Ptr node) then true
        else begin
          Memdom.Alloc.free t.alloc node.hdr;
          loop ()
        end
    in
    let r = loop () in
    S.end_op t.scheme ~tid;
    r

  let remove t key =
    check_key key;
    let tid = Registry.tid () in
    S.begin_op t.scheme ~tid;
    let rec loop () =
      let found, prev_link, curr_st = find t ~tid key in
      if not found then false
      else
        let curr = target_exn curr_st in
        let next_st = S.get_protected t.scheme ~tid ~idx:1 (next_of curr) in
        if Link.is_marked next_st then loop ()
        else
          let marked =
            match Link.target next_st with
            | Some nx -> Link.Mark nx
            | None -> assert false
          in
          if Link.cas (next_of curr) next_st marked then begin
            let unmarked =
              match Link.target next_st with
              | Some nx -> Link.Ptr nx
              | None -> Link.Null
            in
            if Link.cas prev_link curr_st unmarked then
              S.retire t.scheme ~tid curr
            else ignore (find t ~tid key);
            true
          end
          else loop ()
    in
    let r = loop () in
    S.end_op t.scheme ~tid;
    r

  (* Quiesced helpers: keys across all buckets, ascending. *)
  let to_list t =
    let acc = ref [] in
    Array.iter
      (fun head ->
        let rec walk st =
          match Link.target st with
          | None -> ()
          | Some n ->
              if n != t.tail then begin
                if not (Link.is_marked (Link.get n.next)) then
                  acc := key_of n :: !acc;
                walk (Link.get n.next)
              end
        in
        walk (Link.get head))
      t.buckets;
    List.sort compare !acc

  let size t = List.length (to_list t)

  let destroy t =
    Array.iter
      (fun head ->
        let rec free_chain n =
          if n != t.tail then begin
            let nx = target_exn (Link.get n.next) in
            Memdom.Alloc.free t.alloc n.hdr;
            free_chain nx
          end
        in
        (match Link.target (Link.get head) with
        | Some n -> free_chain n
        | None -> ());
        Link.set head Link.Null)
      t.buckets;
    Memdom.Alloc.free t.alloc t.tail.hdr;
    S.flush t.scheme

  let unreclaimed t = S.unreclaimed t.scheme
  let flush t = S.flush t.scheme
  let alloc t = t.alloc
end
