(** Michael–Scott lock-free queue [20], parameterized by a *manual*
    reclamation scheme (HP, PTB, EBR, HE, IBR, PTP, Leak).

    The classical target of manual schemes: the dequeuer that swings
    [head] knows the old sentinel just became unreachable and calls
    retire at exactly that point.  Hazard indexes: 0 = head/tail
    snapshot, 1 = successor. *)

module Make (V : sig
  type t
end)
(R : Reclaim.Scheme_intf.MAKER) : Intf.QUEUE with type item = V.t
