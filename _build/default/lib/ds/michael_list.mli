(** Michael's lock-free linked-list set [18] ("Michael-Harris" in the
    paper's figures), parameterized by a manual reclamation scheme — the
    one list of the paper's four that manual schemes *can* handle.

    Hazard indexes: 0 = curr, 1 = next, 2 = prev.  Window validation is
    by box identity, strictly stronger than the C++ tag comparison.
    Keys must lie strictly between [min_int] and [max_int]. *)

module Make (R : Reclaim.Scheme_intf.MAKER) : Intf.SET
