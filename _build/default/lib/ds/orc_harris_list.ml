(** Harris's original lock-free linked list [12] with OrcGC.

    This is the paper's obstacle-2 example (§2): searches traverse
    *through* marked (logically deleted) nodes and a whole chain of
    marked nodes is excised with a single CAS, so no thread can tell when
    an individual node becomes unreachable — manual schemes cannot place
    a retire call, and integrating HP-family schemes loses correctness.
    With OrcGC the chain-excision CAS drops the first chain node's count
    and the destructor cascade walks the chain down, reclaiming each node
    as its protections expire.  No algorithmic modification is made. *)

open Atomicx

module Make () = struct
  type node = { key : int; next : node Link.t; hdr : Memdom.Hdr.t }

  module O = Orc_core.Orc.Make (struct
    type t = node

    let hdr n = n.hdr
    let iter_links n f = f n.next
  end)

  type t = {
    head : node;
    tail : node;
    head_root : node Link.t;
    tail_root : node Link.t;
    orc : O.t;
    alloc : Memdom.Alloc.t;
  }

  let scheme_name = "orc"

  let next_of n =
    Memdom.Hdr.check_access n.hdr;
    n.next

  let key_of n =
    Memdom.Hdr.check_access n.hdr;
    n.key

  let create ?(mode = Memdom.Alloc.System) () =
    let alloc = Memdom.Alloc.create ~mode "orc_harris_list" in
    let orc = O.create alloc in
    O.with_guard orc (fun g ->
        let tp =
          O.alloc_node g (fun hdr ->
              { key = max_int; next = Link.make Link.Null; hdr })
        in
        let tail = O.Ptr.node_exn tp in
        let hp =
          O.alloc_node g (fun hdr ->
              { key = min_int; next = O.new_link g (Link.Ptr tail); hdr })
        in
        let head = O.Ptr.node_exn hp in
        {
          head;
          tail;
          head_root = O.new_link g (Link.Ptr head);
          tail_root = O.new_link g (Link.Ptr tail);
          orc;
          alloc;
        })

  (* Harris search: find adjacent (left, right) with left.key < key <=
     right.key and right unmarked, excising any marked chain in between
     with one CAS.  On return [left] and [right] are protected and the
     returned state is the box installed in left.next (pointing at
     right).  The cursor walks *through* marked nodes — the behaviour
     that breaks manual schemes and that OrcGC supports unchanged. *)
  let rec search t g key ~left ~right ~tnext =
    let left_link = ref t.head.next in
    let left_next = ref Link.Null in
    let restart () = search t g key ~left ~right ~tnext in
    (* [right] plays Harris's cursor t; start at head *)
    O.load g t.head_root right;
    O.load g (next_of t.head) tnext;
    (* do { update left; advance t } while (marked(t.next) || t.key<key) *)
    let rec walk () =
      let tn = O.Ptr.node_exn right in
      if not (O.Ptr.is_marked tnext) then begin
        O.assign g left right;
        left_link := next_of tn;
        left_next := O.Ptr.state tnext
      end;
      match O.Ptr.node tnext with
      | None -> () (* only the tail has a null next *)
      | Some u ->
          O.assign g right tnext;
          if u != t.tail then begin
            O.load g (next_of u) tnext;
            if O.Ptr.is_marked tnext || key_of u < key then walk ()
          end
    in
    walk ();
    let right_node = O.Ptr.node_exn right in
    if Link.same !left_next (Link.Ptr right_node) then begin
      (* adjacent already; restart if right got marked meanwhile *)
      if right_node != t.tail && Link.is_marked (Link.get (next_of right_node))
      then restart ()
      else (!left_link, !left_next)
    end
    else begin
      (* excise the marked chain [left_next .. right) in one CAS *)
      let desired = Link.Ptr right_node in
      if O.cas g !left_link ~expected:!left_next ~desired then begin
        if
          right_node != t.tail
          && Link.is_marked (Link.get (next_of right_node))
        then restart ()
        else (!left_link, desired)
      end
      else restart ()
    end

  let check_key key =
    if key = min_int || key = max_int then
      invalid_arg "Orc_harris_list: key out of range"

  let contains t key =
    check_key key;
    O.with_guard t.orc (fun g ->
        let left = O.ptr g and right = O.ptr g and tnext = O.ptr g in
        let _ = search t g key ~left ~right ~tnext in
        key_of (O.Ptr.node_exn right) = key)

  let add t key =
    check_key key;
    O.with_guard t.orc @@ fun g ->
    let left = O.ptr g and right = O.ptr g and tnext = O.ptr g in
    let node = ref None in
    let rec loop () =
      let left_link, right_st = search t g key ~left ~right ~tnext in
      let right_node = O.Ptr.node_exn right in
      if key_of right_node = key then false
      else begin
        let n =
          match !node with
          | Some n -> n
          | None ->
              let p =
                O.alloc_node g (fun hdr ->
                    { key; next = Link.make Link.Null; hdr })
              in
              let n = O.Ptr.node_exn p in
              node := Some n;
              n
        in
        O.store g n.next (Link.Ptr right_node);
        if O.cas g left_link ~expected:right_st ~desired:(Link.Ptr n) then true
        else loop ()
      end
    in
    loop ()

  let remove t key =
    check_key key;
    O.with_guard t.orc @@ fun g ->
    let left = O.ptr g and right = O.ptr g and tnext = O.ptr g in
    let rnext = O.ptr g in
    let rec loop () =
      let left_link, right_st = search t g key ~left ~right ~tnext in
      let right_node = O.Ptr.node_exn right in
      if key_of right_node <> key then false
      else begin
        O.load g (next_of right_node) rnext;
        if O.Ptr.is_marked rnext then loop ()
        else
          let nx = O.Ptr.node_exn rnext in
          if
            O.cas g (next_of right_node) ~expected:(O.Ptr.state rnext)
              ~desired:(Link.Mark nx)
          then begin
            (* try to unlink right; otherwise a later search excises it *)
            if
              not
                (O.cas g left_link ~expected:right_st ~desired:(Link.Ptr nx))
            then ignore (search t g key ~left ~right ~tnext);
            true
          end
          else loop ()
      end
    in
    loop ()

  let to_list t =
    let rec walk acc n =
      match Link.target (Link.get n.next) with
      | None -> List.rev acc
      | Some nx ->
          if nx == t.tail then List.rev acc
          else
            let deleted = Link.is_marked (Link.get nx.next) in
            walk (if deleted then acc else key_of nx :: acc) nx
    in
    walk [] t.head

  let size t = List.length (to_list t)

  let destroy t =
    O.with_guard t.orc (fun g ->
        O.store g t.head_root Link.Null;
        O.store g t.tail_root Link.Null)

  let unreclaimed t = O.unreclaimed t.orc
  let flush t = O.flush t.orc
  let alloc t = t.alloc
end
