(** LCRQ — Morrison & Afek's linked concurrent ring queue [21],
    parameterized by a manual reclamation scheme.

    A lock-free list of ring segments driven by fetch-and-add counters;
    a filled or livelocked ring is closed and a new segment linked
    behind it.  The reclamation unit is the segment.  The paper's
    double-word CAS cells become immutable boxed records under a single
    physical CAS.  FAA-based structures like this are outside the
    normalized form required by FreeAccess/AOA (§2). *)

val ring_size : int
val closed_bit : int
val idx_mask : int

module Make (V : sig
  type t
end)
(R : Reclaim.Scheme_intf.MAKER) : Intf.QUEUE with type item = V.t
