(** Wait-free linked list in the style of Timnat, Braginsky, Kogan &
    Petrank [27] ("TBKP"), with OrcGC.

    Architecture as in the original: per-thread operation descriptors
    with phase numbers; every operation publishes a descriptor and then
    helps all pending operations with lower-or-equal phases, so each
    operation completes within a bounded number of helping rounds.
    Remove ownership is decided by a claim word in the victim node (the
    original's "success bit"): the operation whose tid wins the claim CAS
    is the one that logically deletes the node.

    Simplification relative to the C++ original, documented in DESIGN.md:
    the insert idempotency machinery (the hardest part of TBKP) leans on
    the substrate's ABA-free box CAS — a window expectation read before
    any interfering change can never succeed afterwards, so a stale
    helper can neither double-insert nor resurrect a removed node; a
    node's marked [next] additionally witnesses "was linked, then
    removed" for late outcome decisions.

    Reclamation-wise: nodes are referenced from the list *and* from
    descriptors, and descriptors are themselves shared objects — the same
    multiple-incoming-references situation as the Kogan-Petrank queue
    that manual schemes cannot reclaim (obstacle 1). *)

open Atomicx

module Make () = struct
  type node = {
    key : int;
    next : node Link.t; (* list linkage (Mark = logically deleted) *)
    ins_claim : int Atomic.t; (* -1 free, -2 linking/linked, -3 neutralized *)
    del_claim : int Atomic.t; (* deleting op's tid; -1 = unclaimed *)
    (* descriptor fields *)
    phase : int;
    pending : bool;
    is_insert : bool;
    success : bool;
    dnode : node Link.t; (* descriptor's node: insert's node / remove's victim *)
    hdr : Memdom.Hdr.t;
  }

  module O = Orc_core.Orc.Make (struct
    type t = node

    let hdr n = n.hdr

    let iter_links n f =
      f n.next;
      f n.dnode
  end)

  type t = {
    head : node;
    tail : node;
    head_root : node Link.t;
    tail_root : node Link.t;
    state : node Link.t array;
    orc : O.t;
    alloc : Memdom.Alloc.t;
  }

  let scheme_name = "orc"

  let key_of n =
    Memdom.Hdr.check_access n.hdr;
    n.key

  let next_of n =
    Memdom.Hdr.check_access n.hdr;
    n.next

  let dnode_of n =
    Memdom.Hdr.check_access n.hdr;
    n.dnode

  let mk_node key hdr =
    {
      key;
      next = Link.make Link.Null;
      ins_claim = Atomic.make (-1);
      del_claim = Atomic.make (-1);
      phase = -1;
      pending = false;
      is_insert = false;
      success = false;
      dnode = Link.make Link.Null;
      hdr;
    }

  let mk_desc ~phase ~pending ~is_insert ~success ~node g hdr =
    {
      key = 0;
      next = Link.make Link.Null;
      ins_claim = Atomic.make (-1);
      del_claim = Atomic.make (-1);
      phase;
      pending;
      is_insert;
      success;
      dnode =
        (match node with
        | Some n -> O.new_link g (Link.Ptr n)
        | None -> Link.make Link.Null);
      hdr;
    }

  let create ?(mode = Memdom.Alloc.System) () =
    let alloc = Memdom.Alloc.create ~mode "orc_tbkp_list" in
    let orc = O.create alloc in
    O.with_guard orc (fun g ->
        let tail = O.Ptr.node_exn (O.alloc_node g (mk_node max_int)) in
        let head =
          O.Ptr.node_exn
            (O.alloc_node g (fun hdr ->
                 {
                   (mk_node min_int hdr) with
                   next = O.new_link g (Link.Ptr tail);
                 }))
        in
        let dp = O.ptr g in
        let state =
          Array.init Registry.max_threads (fun _ ->
              let d =
                O.alloc_node_into g dp
                  (mk_desc ~phase:(-1) ~pending:false ~is_insert:true
                     ~success:false ~node:None g)
              in
              O.new_link g (Link.Ptr d))
        in
        {
          head;
          tail;
          head_root = O.new_link g (Link.Ptr head);
          tail_root = O.new_link g (Link.Ptr tail);
          state;
          orc;
          alloc;
        })

  type cursor = {
    prev : O.Ptr.t;
    curr : O.Ptr.t;
    next : O.Ptr.t;
    sp : O.Ptr.t; (* descriptor *)
    dn : O.Ptr.t; (* descriptor's node *)
    dp : O.Ptr.t; (* fresh descriptors *)
    own : O.Ptr.t; (* a node's own next *)
  }

  let cursor g =
    {
      prev = O.ptr g;
      curr = O.ptr g;
      next = O.ptr g;
      sp = O.ptr g;
      dn = O.ptr g;
      dp = O.ptr g;
      own = O.ptr g;
    }

  (* Michael-style find (unlinks marked nodes); on return cu.curr is the
     first node with key >= [key] and the returned link is the
     predecessor link holding [Ptr.state cu.curr]. *)
  let rec find t g key cu =
    let prev_link = ref t.head.next in
    O.load g !prev_link cu.curr;
    let restart () = find t g key cu in
    let rec loop () =
      let c = O.Ptr.node_exn cu.curr in
      O.load g (next_of c) cu.next;
      if not (Link.get !prev_link == O.Ptr.state cu.curr) then restart ()
      else if O.Ptr.is_marked cu.next then begin
        let unmarked =
          match O.Ptr.node cu.next with
          | Some nx -> Link.Ptr nx
          | None -> Link.Null
        in
        if O.cas g !prev_link ~expected:(O.Ptr.state cu.curr) ~desired:unmarked
        then begin
          O.assign g cu.curr cu.next;
          O.Ptr.retag cu.curr unmarked;
          loop ()
        end
        else restart ()
      end
      else if key_of c >= key then (key_of c = key, !prev_link)
      else begin
        O.assign g cu.prev cu.curr;
        O.assign g cu.curr cu.next;
        prev_link := next_of c;
        loop ()
      end
    in
    loop ()

  let max_phase t g cu =
    let m = ref (-1) in
    for i = 0 to Registry.high_water () - 1 do
      O.load g t.state.(i) cu.sp;
      match O.Ptr.node cu.sp with
      | Some d -> if d.phase > !m then m := d.phase
      | None -> ()
    done;
    !m

  (* Replace thread [i]'s descriptor with a completed one. *)
  let complete t g cu i ~success =
    let d = O.Ptr.node_exn cu.sp in
    O.load g (dnode_of d) cu.dn;
    let nd =
      O.alloc_node_into g cu.dp
        (mk_desc ~phase:d.phase ~pending:false ~is_insert:d.is_insert ~success
           ~node:(O.Ptr.node cu.dn) g)
    in
    ignore
      (O.cas g t.state.(i) ~expected:(O.Ptr.state cu.sp)
         ~desired:(Link.Ptr nd))

  let still_pending t g cu i ph =
    O.load g t.state.(i) cu.sp;
    match O.Ptr.node cu.sp with
    | Some d -> d.pending && d.phase <= ph
    | None -> false

  (* Insert helping.  The physical link and the logical completion live
     in different words, so a stale helper could link the node after
     another helper already completed the operation as a failure.  The
     [ins_claim] word closes that race: a link attempt may only be made
     while holding the claim (-1 -> -2, released on a failed attempt,
     kept forever once linked), and completing with failure requires
     first neutralizing the node (-1 -> -3).  A helper that finds the
     claim held simply retries — this degrades a stalled insert's
     progress from wait-free to lock-free, a documented deviation
     (DESIGN.md); the original achieves full wait-freedom with
     descriptor-wrapped links. *)
  let help_insert t g cu i ph =
    let rec attempt () =
      if still_pending t g cu i ph then begin
        (* cu.sp holds i's descriptor *)
        let d = O.Ptr.node_exn cu.sp in
        O.load g (dnode_of d) cu.dn;
        match O.Ptr.node cu.dn with
        | None -> () (* malformed; cannot happen for inserts *)
        | Some node ->
            let found, prev_link = find t g node.key cu in
            let was_linked_then_removed () =
              Link.is_marked (Link.get (next_of node))
            in
            let complete_false () =
              if
                Atomic.compare_and_set node.ins_claim (-1) (-3)
                || Atomic.get node.ins_claim = -3
              then complete t g cu i ~success:false
              else attempt () (* a link attempt is in flight: re-examine *)
            in
            if found then begin
              match O.Ptr.node cu.curr with
              | Some c when c == node -> complete t g cu i ~success:true
              | Some _ | None ->
                  if was_linked_then_removed () then
                    complete t g cu i ~success:true
                  else complete_false ()
            end
            else if was_linked_then_removed () then
              complete t g cu i ~success:true
            else if Atomic.get node.ins_claim = -3 then
              complete t g cu i ~success:false
            else if not (Atomic.compare_and_set node.ins_claim (-1) (-2)) then
              attempt () (* claim held or neutralized: re-examine *)
            else begin
              (* we hold the claim: point the node at the window's
                 successor, then link *)
              O.load g (next_of node) cu.own;
              if O.Ptr.is_marked cu.own then complete t g cu i ~success:true
              else begin
                let ok =
                  match O.Ptr.node cu.own, O.Ptr.node cu.curr with
                  | Some a, Some b when a == b -> true
                  | _, Some b ->
                      O.cas g (next_of node) ~expected:(O.Ptr.state cu.own)
                        ~desired:(Link.Ptr b)
                  | _, None -> false
                in
                if
                  ok
                  && O.cas g prev_link ~expected:(O.Ptr.state cu.curr)
                       ~desired:(Link.Ptr node)
                then complete t g cu i ~success:true (* claim kept: linked *)
                else begin
                  ignore (Atomic.compare_and_set node.ins_claim (-2) (-1));
                  attempt ()
                end
              end
            end
      end
    in
    attempt ()

  let help_remove t g cu i ph =
    let rec attempt () =
      if still_pending t g cu i ph then begin
        let d = O.Ptr.node_exn cu.sp in
        O.load g (dnode_of d) cu.dn;
        match O.Ptr.node cu.dn with
        | None ->
            (* No victim recorded yet: search for one.  Recording goes
               through the state CAS so that it serializes against any
               concurrent failure completion — a mutable field inside
               the descriptor would let a stale "not found" view win
               after a victim was already claimed. *)
            let found, _ = find t g d.key cu in
            if not found then complete t g cu i ~success:false
            else begin
              let victim = O.Ptr.node_exn cu.curr in
              let nd =
                O.alloc_node_into g cu.dp (fun hdr ->
                    { (mk_desc ~phase:d.phase ~pending:true ~is_insert:false
                         ~success:false ~node:(Some victim) g hdr)
                      with key = d.key })
              in
              ignore
                (O.cas g t.state.(i) ~expected:(O.Ptr.state cu.sp)
                   ~desired:(Link.Ptr nd));
              attempt ()
            end
        | Some victim ->
            (* decide ownership of this victim *)
            ignore (Atomic.compare_and_set victim.del_claim (-1) i);
            if Atomic.get victim.del_claim = i then begin
              (* we own the deletion: mark, unlink, report success *)
              let rec mark () =
                O.load g (next_of victim) cu.own;
                if not (O.Ptr.is_marked cu.own) then begin
                  match O.Ptr.node cu.own with
                  | Some nx ->
                      if
                        not
                          (O.cas g (next_of victim)
                             ~expected:(O.Ptr.state cu.own)
                             ~desired:(Link.Mark nx))
                      then mark ()
                  | None -> () (* victim is a sentinel: impossible *)
                end
              in
              mark ();
              ignore (find t g victim.key cu) (* physical unlink *);
              complete t g cu i ~success:true
            end
            else begin
              (* lost the claim: forget this victim and retry *)
              let nd =
                O.alloc_node_into g cu.dp (fun hdr ->
                    { (mk_desc ~phase:d.phase ~pending:true ~is_insert:false
                         ~success:false ~node:None g hdr)
                      with key = d.key })
              in
              ignore
                (O.cas g t.state.(i) ~expected:(O.Ptr.state cu.sp)
                   ~desired:(Link.Ptr nd));
              attempt ()
            end
      end
    in
    attempt ()

  let help t g cu ph =
    for i = 0 to Registry.high_water () - 1 do
      O.load g t.state.(i) cu.sp;
      match O.Ptr.node cu.sp with
      | Some d when d.pending && d.phase <= ph ->
          if d.is_insert then help_insert t g cu i ph
          else help_remove t g cu i ph
      | Some _ | None -> ()
    done

  let check_key key =
    if key = min_int || key = max_int then
      invalid_arg "Orc_tbkp_list: key out of range"

  (* A completion CAS can lose to a descriptor replacement (e.g. the
     lost-claim retry path), so the operation keeps helping its own
     descriptor until it is no longer pending. *)
  let outcome t g cu tid ph =
    let rec finish () =
      O.load g t.state.(tid) cu.sp;
      let d = O.Ptr.node_exn cu.sp in
      if d.pending then begin
        if d.is_insert then help_insert t g cu tid ph
        else help_remove t g cu tid ph;
        finish ()
      end
      else d.success
    in
    finish ()

  let add t key =
    check_key key;
    O.with_guard t.orc @@ fun g ->
    let tid = Registry.tid () in
    let cu = cursor g in
    let ph = max_phase t g cu + 1 in
    let np = O.ptr g in
    let node = O.alloc_node_into g np (mk_node key) in
    let d =
      O.alloc_node_into g cu.dp
        (mk_desc ~phase:ph ~pending:true ~is_insert:true ~success:false
           ~node:(Some node) g)
    in
    O.store g t.state.(tid) (Link.Ptr d);
    help t g cu ph;
    outcome t g cu tid ph

  let remove t key =
    check_key key;
    O.with_guard t.orc @@ fun g ->
    let tid = Registry.tid () in
    let cu = cursor g in
    let ph = max_phase t g cu + 1 in
    let d =
      O.alloc_node_into g cu.dp (fun hdr ->
          { (mk_desc ~phase:ph ~pending:true ~is_insert:false ~success:false
               ~node:None g hdr)
            with key })
    in
    O.store g t.state.(tid) (Link.Ptr d);
    help t g cu ph;
    outcome t g cu tid ph

  (* Wait-free lookup, straight through marked nodes (as in the
     original, whose contains never helps or restarts). *)
  let contains t key =
    check_key key;
    O.with_guard t.orc (fun g ->
        let curr = O.ptr g and next = O.ptr g in
        O.load g t.head_root curr;
        let rec walk () =
          let c = O.Ptr.node_exn curr in
          if key_of c > key then false
          else begin
            O.load g (next_of c) next;
            if key_of c = key then not (O.Ptr.is_marked next)
            else begin
              O.assign g curr next;
              walk ()
            end
          end
        in
        walk ())

  let to_list t =
    let rec walk acc n =
      match Link.target (Link.get (next_of n)) with
      | None -> List.rev acc
      | Some nx ->
          if nx == t.tail then List.rev acc
          else
            let deleted = Link.is_marked (Link.get (next_of nx)) in
            walk (if deleted then acc else key_of nx :: acc) nx
    in
    walk [] t.head

  let size t = List.length (to_list t)

  let destroy t =
    O.with_guard t.orc @@ fun g ->
    O.store g t.head_root Link.Null;
    O.store g t.tail_root Link.Null;
    Array.iter (fun s -> O.store g s Link.Null) t.state

  let unreclaimed t = O.unreclaimed t.orc
  let flush t = O.flush t.orc
  let alloc t = t.alloc
end
