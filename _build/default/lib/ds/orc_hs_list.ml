(** Herlihy & Shavit's nonblocking list with wait-free lookups [15],
    with OrcGC.

    [contains] traverses the list without ever restarting and without
    helping: it walks straight through marked nodes and reports whether
    an unmarked node with the key was seen.  That requires the pointers
    of removed nodes to stay valid while any traversal can still reach
    them — the paper's obstacle 2, which rules out HP-family manual
    schemes.  Under OrcGC a removed node keeps its outgoing hard link
    until the node itself is reclaimed, so the lookup path stays sound
    with no algorithm change.

    [add]/[remove] are the usual find-window operations (as in
    {!Orc_michael_list}). *)

open Atomicx

module Make () = struct
  type node = { key : int; next : node Link.t; hdr : Memdom.Hdr.t }

  module O = Orc_core.Orc.Make (struct
    type t = node

    let hdr n = n.hdr
    let iter_links n f = f n.next
  end)

  type t = {
    head : node;
    tail : node;
    head_root : node Link.t;
    tail_root : node Link.t;
    orc : O.t;
    alloc : Memdom.Alloc.t;
  }

  let scheme_name = "orc"

  let next_of n =
    Memdom.Hdr.check_access n.hdr;
    n.next

  let key_of n =
    Memdom.Hdr.check_access n.hdr;
    n.key

  let create ?(mode = Memdom.Alloc.System) () =
    let alloc = Memdom.Alloc.create ~mode "orc_hs_list" in
    let orc = O.create alloc in
    O.with_guard orc (fun g ->
        let tp =
          O.alloc_node g (fun hdr ->
              { key = max_int; next = Link.make Link.Null; hdr })
        in
        let tail = O.Ptr.node_exn tp in
        let hp =
          O.alloc_node g (fun hdr ->
              { key = min_int; next = O.new_link g (Link.Ptr tail); hdr })
        in
        let head = O.Ptr.node_exn hp in
        {
          head;
          tail;
          head_root = O.new_link g (Link.Ptr head);
          tail_root = O.new_link g (Link.Ptr tail);
          orc;
          alloc;
        })

  let check_key key =
    if key = min_int || key = max_int then
      invalid_arg "Orc_hs_list: key out of range"

  (* Identical window-find to the Michael list (unlinks marked nodes on
     the way); used by add and remove only. *)
  let rec find t g key ~prev ~curr ~next =
    let prev_link = ref t.head.next in
    O.load g !prev_link curr;
    let restart () = find t g key ~prev ~curr ~next in
    let rec loop () =
      let c = O.Ptr.node_exn curr in
      O.load g (next_of c) next;
      if not (Link.get !prev_link == O.Ptr.state curr) then restart ()
      else if O.Ptr.is_marked next then begin
        let unmarked =
          match O.Ptr.node next with
          | Some nx -> Link.Ptr nx
          | None -> Link.Null
        in
        if O.cas g !prev_link ~expected:(O.Ptr.state curr) ~desired:unmarked
        then begin
          O.assign g curr next;
          O.Ptr.retag curr unmarked;
          loop ()
        end
        else restart ()
      end
      else if key_of c >= key then (key_of c = key, !prev_link)
      else begin
        O.assign g prev curr;
        O.assign g curr next;
        prev_link := next_of c;
        loop ()
      end
    in
    loop ()

  (* Wait-free lookup: one forward pass, straight through marked nodes,
     no restart, no helping. *)
  let contains t key =
    check_key key;
    O.with_guard t.orc (fun g ->
        let curr = O.ptr g and next = O.ptr g in
        O.load g t.head_root curr;
        let rec walk () =
          let c = O.Ptr.node_exn curr in
          if key_of c > key then false
          else begin
            O.load g (next_of c) next;
            if key_of c = key then not (O.Ptr.is_marked next)
            else begin
              O.assign g curr next;
              walk ()
            end
          end
        in
        walk ())

  let add t key =
    check_key key;
    O.with_guard t.orc @@ fun g ->
    let prev = O.ptr g and curr = O.ptr g and next = O.ptr g in
    let node = ref None in
    let rec loop () =
      let found, prev_link = find t g key ~prev ~curr ~next in
      if found then false
      else begin
        let n =
          match !node with
          | Some n -> n
          | None ->
              let p =
                O.alloc_node g (fun hdr ->
                    { key; next = Link.make Link.Null; hdr })
              in
              let n = O.Ptr.node_exn p in
              node := Some n;
              n
        in
        O.store g n.next (O.Ptr.state curr);
        if O.cas g prev_link ~expected:(O.Ptr.state curr) ~desired:(Link.Ptr n)
        then true
        else loop ()
      end
    in
    loop ()

  let remove t key =
    check_key key;
    O.with_guard t.orc @@ fun g ->
    let prev = O.ptr g and curr = O.ptr g and next = O.ptr g in
    let rec loop () =
      let found, prev_link = find t g key ~prev ~curr ~next in
      if not found then false
      else begin
        let c = O.Ptr.node_exn curr in
        O.load g (next_of c) next;
        if O.Ptr.is_marked next then loop ()
        else
          let nx = O.Ptr.node_exn next in
          if
            O.cas g (next_of c) ~expected:(O.Ptr.state next)
              ~desired:(Link.Mark nx)
          then begin
            if
              not
                (O.cas g prev_link ~expected:(O.Ptr.state curr)
                   ~desired:(Link.Ptr nx))
            then ignore (find t g key ~prev ~curr ~next);
            true
          end
          else loop ()
      end
    in
    loop ()

  let to_list t =
    let rec walk acc n =
      match Link.target (Link.get n.next) with
      | None -> List.rev acc
      | Some nx ->
          if nx == t.tail then List.rev acc
          else
            let deleted = Link.is_marked (Link.get nx.next) in
            walk (if deleted then acc else key_of nx :: acc) nx
    in
    walk [] t.head

  let size t = List.length (to_list t)

  let destroy t =
    O.with_guard t.orc (fun g ->
        O.store g t.head_root Link.Null;
        O.store g t.tail_root Link.Null)

  let unreclaimed t = O.unreclaimed t.orc
  let flush t = O.flush t.orc
  let alloc t = t.alloc
end
