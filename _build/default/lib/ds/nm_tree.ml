(** Natarajan & Mittal's lock-free external binary search tree [22],
    parameterized by a manual reclamation scheme.

    External tree: internal nodes route, leaves hold the keys.  A delete
    *flags* the edge to the doomed leaf, *tags* the parent's other edge
    to freeze it, then swings the deepest clean ancestor edge directly to
    the surviving sibling — excising the whole frozen path at once.
    Because edges only ever change by box replacement, a stale CAS
    expectation can never succeed, which is what makes overlapping
    cleanups safe (the C++ original gets the same property from its
    flag/tag bits changing the word value).

    Reclamation: the thread whose ancestor CAS wins owns the excised
    region — the path of tagged internal nodes plus their flagged leaf
    children — and retires exactly those nodes; helped deletes return
    without retiring anything.

    Hazard indexes: 0 = ancestor, 1 = successor, 2 = parent, 3 = leaf,
    4 = cursor.  Keys must be < [max_int - 2] (the three infinity
    sentinels). *)

open Atomicx

let inf0 = max_int - 2
let inf1 = max_int - 1
let inf2 = max_int

module Make (R : Reclaim.Scheme_intf.MAKER) = struct
  type node = {
    key : int;
    left : node Link.t; (* [Null] in leaves *)
    right : node Link.t;
    hdr : Memdom.Hdr.t;
  }

  module S = R (struct
    type t = node

    let hdr n = n.hdr
  end)

  type t = {
    r : node; (* sentinel root, immortal *)
    s : node; (* sentinel child, immortal *)
    scheme : S.t;
    alloc : Memdom.Alloc.t;
  }

  type seek_record = {
    mutable anc : node;
    mutable succ : node;
    mutable par : node;
    mutable leaf : node;
    mutable anc_edge : node Link.state; (* box read from edge anc->succ *)
    mutable par_edge : node Link.state; (* box read from edge par->leaf *)
  }

  let scheme_name = S.name

  let key_of n =
    Memdom.Hdr.check_access n.hdr;
    n.key

  let left_of n =
    Memdom.Hdr.check_access n.hdr;
    n.left

  let right_of n =
    Memdom.Hdr.check_access n.hdr;
    n.right

  (* route: the child edge of internal node [n] for [key] *)
  let child_link n key = if key < key_of n then left_of n else right_of n

  let mk_leaf alloc key =
    {
      key;
      left = Link.make Link.Null;
      right = Link.make Link.Null;
      hdr = Memdom.Alloc.hdr alloc ();
    }

  let create ?(mode = Memdom.Alloc.System) () =
    let alloc = Memdom.Alloc.create ~mode "nm_tree" in
    let scheme = S.create ~max_hps:5 alloc in
    let l0 = mk_leaf alloc inf0 in
    let l1 = mk_leaf alloc inf1 in
    let l2 = mk_leaf alloc inf2 in
    let s =
      {
        key = inf1;
        left = Link.make (Link.Ptr l0);
        right = Link.make (Link.Ptr l1);
        hdr = Memdom.Alloc.hdr alloc ();
      }
    in
    let r =
      {
        key = inf2;
        left = Link.make (Link.Ptr s);
        right = Link.make (Link.Ptr l2);
        hdr = Memdom.Alloc.hdr alloc ();
      }
    in
    { r; s; scheme; alloc }

  let target_exn st =
    match Link.target st with Some n -> n | None -> assert false

  (* Natarajan-Mittal seek: walk down to the leaf for [key], remembering
     the deepest ancestor whose path edge is untagged.  Restarts when it
     steps on a poisoned edge: unlike the lists, excision here does not
     modify the interior edges of the removed region, so hazard
     validation alone cannot tell that a frozen path has left the tree —
     the excising thread therefore poisons the region's edges before
     retiring (see [excise_region]), and poison is the traversal's signal
     that it has wandered into reclaimed territory. *)
  let rec seek t ~tid key =
    let sk =
      {
        anc = t.r;
        succ = t.s;
        par = t.s;
        leaf = t.s (* placeholder, set below *);
        anc_edge = Link.get t.r.left (* immortal edge R->S *);
        par_edge = Link.Null;
      }
    in
    let par_edge = S.get_protected t.scheme ~tid ~idx:3 t.s.left in
    sk.par_edge <- par_edge;
    sk.leaf <- target_exn par_edge;
    let restart = ref false in
    let rec walk () =
      let l = sk.leaf in
      let probe = Link.get (left_of l) in
      if Link.is_poison probe then restart := true
      else
        match Link.target probe with
        | None -> () (* l is a leaf: done *)
        | Some _ ->
            (* l is internal: descend by key *)
            let cur_st =
              S.get_protected t.scheme ~tid ~idx:4 (child_link l key)
            in
            if Link.is_poison cur_st then restart := true
            else begin
              if not (Link.is_tagged sk.par_edge) then begin
                sk.anc <- sk.par;
                sk.succ <- sk.leaf;
                sk.anc_edge <- sk.par_edge;
                S.copy_protection t.scheme ~tid ~src:2 ~dst:0;
                S.copy_protection t.scheme ~tid ~src:3 ~dst:1
              end;
              sk.par <- l;
              S.copy_protection t.scheme ~tid ~src:3 ~dst:2;
              sk.par_edge <- cur_st;
              sk.leaf <- target_exn cur_st;
              S.copy_protection t.scheme ~tid ~src:4 ~dst:3;
              walk ()
            end
    in
    walk ();
    if !restart then seek t ~tid key else sk

  (* Excise and retire the removed region: every node reachable from [x]
     except the surviving sibling subtree rooted at [w].  The region is
     frozen (all its edges flagged/tagged) and bounded by the number of
     concurrent deletes.  Its edges are poisoned *before* any node is
     retired so that concurrent traversals stuck inside the region fail
     their next protection step and restart instead of chasing frozen
     links into freed memory. *)
  let excise_region t ~tid x w =
    let nodes = ref [] in
    let rec collect x =
      if x != w then begin
        (match Link.target (Link.get x.left) with
        | Some c -> collect c
        | None -> ());
        (match Link.target (Link.get x.right) with
        | Some c -> collect c
        | None -> ());
        nodes := x :: !nodes
      end
    in
    collect x;
    List.iter
      (fun n ->
        ignore (Link.exchange n.left Link.Poison);
        ignore (Link.exchange n.right Link.Poison))
      !nodes;
    List.iter (fun n -> S.retire t.scheme ~tid n) !nodes

  (* cleanup: freeze the parent's sibling edge and swing the ancestor
     edge to the sibling.  Returns true iff this call's CAS won. *)
  let cleanup t ~tid key sk =
    let par = sk.par in
    let child_l, sibling_l =
      if key < key_of par then (left_of par, right_of par)
      else (right_of par, left_of par)
    in
    let child_st = Link.get child_l in
    if Link.is_poison child_st then false (* region already reclaimed *)
    else begin
      (* if the child edge is not flagged, the flag sits on the other side
         (we are helping a delete whose leaf is our routing sibling) *)
      let sibling_l =
        if Link.is_flagged child_st then sibling_l else child_l
      in
      (* tag the sibling edge so it cannot change under us *)
      let rec tag () =
        let s = Link.get sibling_l in
        if Link.is_poison s then None
        else if Link.is_tagged s then Some s
        else begin
          ignore (Link.cas sibling_l s (Link.with_tag s));
          tag ()
        end
      in
      match tag () with
      | None -> false
      | Some s ->
          let w = target_exn s in
          let desired =
            if Link.is_flagged s then Link.Flag w else Link.Ptr w
          in
          let anc_link = child_link sk.anc key in
          if Link.cas anc_link sk.anc_edge desired then begin
            excise_region t ~tid sk.succ w;
            true
          end
          else false
    end

  let check_key key =
    if key >= inf0 then invalid_arg "Nm_tree: key must be < max_int - 2"

  let contains t key =
    check_key key;
    let tid = Registry.tid () in
    S.begin_op t.scheme ~tid;
    let sk = seek t ~tid key in
    let r = key_of sk.leaf = key in
    S.end_op t.scheme ~tid;
    r

  let add t key =
    check_key key;
    let tid = Registry.tid () in
    S.begin_op t.scheme ~tid;
    let rec loop () =
      let sk = seek t ~tid key in
      if key_of sk.leaf = key then false
      else begin
        let cl = child_link sk.par key in
        match sk.par_edge with
        | Link.Ptr leaf when leaf == sk.leaf ->
            let new_leaf = mk_leaf t.alloc key in
            let lkey = key_of sk.leaf in
            let internal =
              if key < lkey then
                {
                  key = lkey;
                  left = Link.make (Link.Ptr new_leaf);
                  right = Link.make sk.par_edge;
                  hdr = Memdom.Alloc.hdr t.alloc ();
                }
              else
                {
                  key;
                  left = Link.make sk.par_edge;
                  right = Link.make (Link.Ptr new_leaf);
                  hdr = Memdom.Alloc.hdr t.alloc ();
                }
            in
            if Link.cas cl sk.par_edge (Link.Ptr internal) then true
            else begin
              (* never published: plain frees *)
              Memdom.Alloc.free t.alloc new_leaf.hdr;
              Memdom.Alloc.free t.alloc internal.hdr;
              (* help an obstructing delete before retrying *)
              if Link.is_flagged (Link.get cl) || Link.is_tagged (Link.get cl)
              then ignore (cleanup t ~tid key sk);
              loop ()
            end
        | Link.Flag _ | Link.Tag _ | Link.FlagTag _ ->
            ignore (cleanup t ~tid key sk);
            loop ()
        | Link.Ptr _ | Link.Null | Link.Mark _ | Link.Poison -> loop ()
      end
    in
    let r = loop () in
    S.end_op t.scheme ~tid;
    r

  let remove t key =
    check_key key;
    let tid = Registry.tid () in
    S.begin_op t.scheme ~tid;
    let rec injection () =
      let sk = seek t ~tid key in
      if key_of sk.leaf <> key then false
      else begin
        let cl = child_link sk.par key in
        match sk.par_edge with
        | Link.Ptr leaf when leaf == sk.leaf ->
            if Link.cas cl sk.par_edge (Link.Flag leaf) then
              if cleanup t ~tid key sk then true else pursue leaf
            else injection ()
        | Link.Flag _ | Link.Tag _ | Link.FlagTag _ ->
            (* someone is deleting here: help, then re-examine *)
            ignore (cleanup t ~tid key sk);
            injection ()
        | Link.Ptr _ | Link.Null | Link.Mark _ | Link.Poison -> injection ()
      end
    (* cleanup mode: our leaf is flagged; finish or detect completion *)
    and pursue leaf =
      let sk = seek t ~tid key in
      if sk.leaf != leaf then true (* someone excised it for us *)
      else if cleanup t ~tid key sk then true
      else pursue leaf
    in
    let r = injection () in
    S.end_op t.scheme ~tid;
    r

  (* Sequential helpers (quiesced). *)
  let to_list t =
    let rec walk acc n =
      match Link.target (Link.get n.left) with
      | None -> if n.key < inf0 then n.key :: acc else acc
      | Some l ->
          let r = target_exn (Link.get n.right) in
          walk (walk acc r) l
    in
    walk [] t.r

  let size t = List.length (to_list t)

  let destroy t =
    let rec free_subtree n =
      (match Link.target (Link.get n.left) with
      | Some l -> free_subtree l
      | None -> ());
      (match Link.target (Link.get n.right) with
      | Some r -> free_subtree r
      | None -> ());
      Memdom.Alloc.free t.alloc n.hdr
    in
    free_subtree t.r;
    Link.set t.r.left Link.Null;
    Link.set t.r.right Link.Null;
    S.flush t.scheme

  let unreclaimed t = S.unreclaimed t.scheme
  let flush t = S.flush t.scheme
  let alloc t = t.alloc
end
