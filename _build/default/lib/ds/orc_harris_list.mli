(** Harris's original lock-free linked list [12] with OrcGC — the
    paper's obstacle-2 example: searches traverse *through* marked nodes
    and whole marked chains are excised by one CAS, so no retire call
    can be placed; manual schemes are inapplicable.  Under OrcGC the
    excision CAS starts a destructor cascade down the chain.  No
    algorithmic modification. *)

module Make () : Intf.SET
