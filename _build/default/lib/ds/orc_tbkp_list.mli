(** Wait-free linked list in the style of Timnat, Braginsky, Kogan &
    Petrank [27], with OrcGC: per-thread operation descriptors, phase
    numbers, bounded helping; remove ownership via a claim word in the
    victim.  The insert idempotency machinery is simplified on top of
    the substrate's ABA-free box CAS (DESIGN.md §6.5); a stalled
    insert's progress degrades to lock-free, lookups stay wait-free.
    Obstacle 1 applies: nodes are referenced from the list and from
    descriptors. *)

module Make () : Intf.SET
