(** Michael's lock-free hash table with OrcGC: annotation-only port of
    {!Hash_map} — bucket heads are root links, no retire call exists. *)

val default_buckets : int

module Make () : Intf.SET
