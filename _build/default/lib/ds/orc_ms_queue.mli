(** Michael–Scott queue with OrcGC (paper Algorithm 1).

    No retire call anywhere: the dequeue swings [head] and OrcGC notices
    the old sentinel's hard-link count reach zero, reclaiming it once
    unprotected.  Versus the textbook algorithm only the type
    annotations change — the paper's deployment methodology (§4.1.1). *)

module Make (V : sig
  type t
end) : Intf.QUEUE with type item = V.t
