(** Turn queue — wait-free MPMC queue in the style of Ramalhete &
    Correia's PPoPP'17 poster [26], with OrcGC.

    Only the poster abstract of the original is published, so this is a
    *reconstruction* that preserves its defining properties (documented
    in DESIGN.md): wait-free progress through bounded, turn-ordered
    helping.

    Enqueue: requests live in a per-thread [enqueuers] array and are
    served round-robin starting after the current tail's enqueuer; the
    tail's own request is cleared once its node reaches the tail.

    Dequeue: a thread announces a request by republishing its previous
    grant as a token ([deqself[i]] and [deqhelp[i]] holding the same node
    means "open") and spins helping until [deqhelp[i]] changes.  Serving
    the head transition [h -> n] is a three-step protocol: (1) claim —
    CAS the token of the turn-chosen open request into [n]'s claim link;
    (2) deliver — CAS that requester's [deqhelp] from the token to [n];
    (3) advance the head once delivery is visible.  A claim whose token
    was meanwhile served by the empty-queue path (the only server that
    bypasses head transitions) is released again; the head is
    re-validated *after* reading the grant state, which confines every
    stale-helper CAS to failure by box identity.

    Reclamation-wise this is another obstacle-1 structure: queue nodes
    are referenced from [head]/[tail], three request arrays *and* claim
    links, with unlink order depending on helping interleavings — per
    the paper only OrcGC (or FreeAccess) can reclaim it, and here the
    annotations are again the only change. *)

open Atomicx

module Make (V : sig
  type t
end) =
struct
  type item = V.t

  type node = {
    item : V.t option;
    enq_tid : int;
    mutable req_tid : int; (* set by the owner before the token is shared *)
    claim : node Link.t; (* token of the request this node is delivered to *)
    next : node Link.t;
    hdr : Memdom.Hdr.t;
  }

  module O = Orc_core.Orc.Make (struct
    type t = node

    let hdr n = n.hdr

    let iter_links n f =
      f n.next;
      f n.claim
  end)

  type t = {
    head : node Link.t;
    tail : node Link.t;
    enqueuers : node Link.t array; (* pending enqueue requests *)
    deqself : node Link.t array; (* request tokens *)
    deqhelp : node Link.t array; (* grants *)
    deq_turn : int Atomic.t; (* fairness anchor for dequeue service *)
    orc : O.t;
    alloc : Memdom.Alloc.t;
  }

  let scheme_name = "orc"

  let item_of n =
    Memdom.Hdr.check_access n.hdr;
    n.item

  let next_of n =
    Memdom.Hdr.check_access n.hdr;
    n.next

  let claim_of n =
    Memdom.Hdr.check_access n.hdr;
    n.claim

  let mk_node ?item ?(enq_tid = -1) () hdr =
    {
      item;
      enq_tid;
      req_tid = -1;
      claim = Link.make Link.Null;
      next = Link.make Link.Null;
      hdr;
    }

  let create ?(mode = Memdom.Alloc.System) () =
    let alloc = Memdom.Alloc.create ~mode "orc_turn_queue" in
    let orc = O.create alloc in
    O.with_guard orc (fun g ->
        let sentinel = O.Ptr.node_exn (O.alloc_node g (mk_node ())) in
        let dummy_self = O.Ptr.node_exn (O.alloc_node g (mk_node ())) in
        let dp = O.ptr g in
        {
          head = O.new_link g (Link.Ptr sentinel);
          tail = O.new_link g (Link.Ptr sentinel);
          enqueuers =
            Array.init Registry.max_threads (fun _ -> Link.make Link.Null);
          deqself =
            Array.init Registry.max_threads (fun _ ->
                O.new_link g (Link.Ptr dummy_self));
          deqhelp =
            Array.init Registry.max_threads (fun i ->
                (* per-thread dummies: tokens must be unique per owner *)
                let d = O.alloc_node_into g dp (mk_node ()) in
                d.req_tid <- i;
                O.new_link g (Link.Ptr d));
          deq_turn = Atomic.make 0;
          orc;
          alloc;
        })

  (* One enqueue help round: complete the tail's request, link the next
     request in turn order, advance the tail. *)
  let enq_round q g ~ltail ~lnext ~req =
    O.load g q.tail ltail;
    let lt = O.Ptr.node_exn ltail in
    (* clear the request of the enqueuer whose node is now the tail *)
    let et = lt.enq_tid in
    if et >= 0 then begin
      O.load g q.enqueuers.(et) req;
      match O.Ptr.node req with
      | Some r when r == lt ->
          ignore
            (O.cas g q.enqueuers.(et) ~expected:(O.Ptr.state req)
               ~desired:Link.Null)
      | Some _ | None -> ()
    end;
    (* serve the next pending request, round-robin after [et] *)
    let hw = Registry.high_water () in
    (try
       for j = 1 to hw do
         let i = (et + j + hw) mod hw in
         O.load g q.enqueuers.(i) req;
         match O.Ptr.node req with
         | Some r ->
             ignore
               (O.cas g (next_of lt) ~expected:Link.Null ~desired:(Link.Ptr r));
             raise_notrace Exit
         | None -> ()
       done
     with Exit -> ());
    (* advance the tail over whatever is linked *)
    O.load g (next_of lt) lnext;
    if not (O.Ptr.is_null lnext) then
      ignore
        (O.cas g q.tail ~expected:(O.Ptr.state ltail)
           ~desired:(O.Ptr.state lnext))

  let enqueue q v =
    O.with_guard q.orc @@ fun g ->
    let tid = Registry.tid () in
    let np = O.ptr g in
    let my = O.alloc_node_into g np (mk_node ~item:v ~enq_tid:tid ()) in
    O.store g q.enqueuers.(tid) (Link.Ptr my);
    let ltail = O.ptr g and lnext = O.ptr g and req = O.ptr g in
    let pending () =
      match Link.target (Link.get q.enqueuers.(tid)) with
      | Some r -> r == my
      | None -> false
    in
    while pending () do
      enq_round q g ~ltail ~lnext ~req
    done

  (* First open dequeue request in turn order; [tok]/[grant] hold its
     deqself/deqhelp states on success. *)
  let pick_open q g ~tok ~grant =
    let hw = Registry.high_water () in
    let anchor = Atomic.get q.deq_turn in
    let chosen = ref (-1) in
    (try
       for j = 1 to hw do
         let i = (anchor + j) mod hw in
         O.load g q.deqself.(i) tok;
         O.load g q.deqhelp.(i) grant;
         if O.Ptr.same_node tok grant && not (O.Ptr.is_null tok) then begin
           chosen := i;
           raise_notrace Exit
         end
       done
     with Exit -> ());
    (anchor, !chosen)

  let bump_turn q anchor w = ignore (Atomic.compare_and_set q.deq_turn anchor w)

  (* One dequeue help round. *)
  let deq_round q g ~lhead ~ltail ~lnext ~tok ~grant ~claimp ~ep =
    O.load g q.head lhead;
    O.load g q.tail ltail;
    let h = O.Ptr.node_exn lhead in
    O.load g (next_of h) lnext;
    if O.Ptr.same_node lhead ltail && O.Ptr.is_null lnext then begin
      (* empty: serve one open request with a fresh empty marker *)
      let anchor, r = pick_open q g ~tok ~grant in
      if r >= 0 then begin
        let e = O.alloc_node_into g ep (mk_node ()) in
        if
          O.cas g q.deqhelp.(r) ~expected:(O.Ptr.state grant)
            ~desired:(Link.Ptr e)
        then bump_turn q anchor r
      end
    end
    else if O.Ptr.same_node lhead ltail then
      (* an enqueue is in flight: help the tail forward *)
      ignore
        (O.cas g q.tail ~expected:(O.Ptr.state ltail)
           ~desired:(O.Ptr.state lnext))
    else begin
      let nx = O.Ptr.node_exn lnext in
      (* (1) ensure the node is claimed by some request's token.  Claims
         are only meaningful while [h] is still the head: a claim
         installed after the transition completed would chain (and can
         even cycle, via the queue's own next links) delivered nodes
         together, which reference counting cannot collect — so validate
         the head before claiming, and clean up a claim that is observed
         to have landed after the head moved. *)
      O.load g (claim_of nx) claimp;
      if O.Ptr.is_null claimp && Link.get q.head == O.Ptr.state lhead then begin
        let anchor, r = pick_open q g ~tok ~grant in
        if r >= 0 then begin
          ignore anchor;
          match O.Ptr.node tok with
          | Some token ->
              ignore
                (O.cas g (claim_of nx) ~expected:(O.Ptr.state claimp)
                   ~desired:(Link.Ptr token))
          | None -> ()
        end;
        O.load g (claim_of nx) claimp
      end;
      if
        (not (O.Ptr.is_null claimp))
        && not (Link.get q.head == O.Ptr.state lhead)
      then begin
        (* the transition completed under us: any claim left on [nx] is
           garbage now; remove it (whoever installed it) *)
        ignore
          (O.cas g (claim_of nx) ~expected:(O.Ptr.state claimp)
             ~desired:Link.Null)
      end
      else
        match O.Ptr.node claimp with
      | None -> () (* no open requests: leave the item queued *)
      | Some tstar ->
          let w = tstar.req_tid in
          if w < 0 then ()
          else begin
            O.load g q.deqhelp.(w) grant;
            (* re-validate the transition only after reading the grant:
               any serve-elsewhere forces a head move first, so a stale
               view cannot reach the release branch wrongly *)
            if Link.get q.head == O.Ptr.state lhead then begin
              match O.Ptr.node grant with
              | Some gn when gn == tstar ->
                  (* (2) deliver the node to the claimed request *)
                  if
                    O.cas g q.deqhelp.(w) ~expected:(O.Ptr.state grant)
                      ~desired:(Link.Ptr nx)
                  then bump_turn q (Atomic.get q.deq_turn) w;
                  (* (3) advance once delivery is visible; the advance
                     winner also clears the claim link, which would
                     otherwise chain every delivered node to its
                     recipient's previous token forever *)
                  O.load g q.deqhelp.(w) grant;
                  (match O.Ptr.node grant with
                  | Some gn' when gn' == nx ->
                      if
                        O.cas g q.head ~expected:(O.Ptr.state lhead)
                          ~desired:(O.Ptr.state lnext)
                      then O.store g (claim_of nx) Link.Null
                  | Some _ | None -> ())
              | Some gn when gn == nx ->
                  (* already delivered: advance *)
                  if
                    O.cas g q.head ~expected:(O.Ptr.state lhead)
                      ~desired:(O.Ptr.state lnext)
                  then O.store g (claim_of nx) Link.Null
              | Some _ | None ->
                  (* the claimed token was served by the empty path:
                     release the claim so the item can be re-served *)
                  ignore
                    (O.cas g (claim_of nx) ~expected:(O.Ptr.state claimp)
                       ~desired:Link.Null)
            end
          end
    end

  let dequeue q =
    O.with_guard q.orc @@ fun g ->
    let tid = Registry.tid () in
    let tok = O.ptr g and grant = O.ptr g in
    (* open my request: republish the previous grant as the token *)
    O.load g q.deqhelp.(tid) grant;
    let token =
      match O.Ptr.node grant with Some n -> n | None -> assert false
    in
    token.req_tid <- tid;
    O.store g q.deqself.(tid) (O.Ptr.state grant);
    let lhead = O.ptr g and ltail = O.ptr g and lnext = O.ptr g in
    let claimp = O.ptr g and ep = O.ptr g in
    let served () =
      match Link.target (Link.get q.deqhelp.(tid)) with
      | Some n -> not (n == token)
      | None -> false
    in
    while not (served ()) do
      deq_round q g ~lhead ~ltail ~lnext ~tok ~grant ~claimp ~ep
    done;
    O.load g q.deqhelp.(tid) grant;
    item_of (O.Ptr.node_exn grant)

  let destroy q =
    O.with_guard q.orc @@ fun g ->
    O.store g q.head Link.Null;
    O.store g q.tail Link.Null;
    Array.iter (fun l -> O.store g l Link.Null) q.enqueuers;
    Array.iter (fun l -> O.store g l Link.Null) q.deqself;
    Array.iter (fun l -> O.store g l Link.Null) q.deqhelp

  let unreclaimed q = O.unreclaimed q.orc
  let flush q = O.flush q.orc
  let alloc q = q.alloc
end
