(** LCRQ with OrcGC: segment lifetime managed entirely by hard-link
    counts (head/tail roots + predecessor's next link).  See {!Lcrq} for
    the algorithm; here there is no retire logic at all. *)

module Make (V : sig
  type t
end) : Intf.QUEUE with type item = V.t
