(** Michael's lock-free list with OrcGC — same algorithm as
    {!Michael_list} with type annotations only; unlinking drops the
    node's last hard link and OrcGC reclaims it once unprotected. *)

module Make () : Intf.SET
