(** Natarajan & Mittal's BST with OrcGC — identical algorithm to
    {!Nm_tree} with *no* retire logic and *no* poisoning: a protected
    node's own hard links pin its successors, so traversals into an
    excised region stay safe and the winning CAS's count transfer
    reclaims the whole region by cascade. *)

module Make () : Intf.SET
