(** Kogan & Petrank's wait-free MPMC queue [17], with OrcGC.

    This is the paper's obstacle-1 structure (§2): queue nodes are
    referenced simultaneously from [head]/[tail] *and* from the per-thread
    operation-descriptor array used for helping, and those references are
    unlinked in orders that depend on the interleaving — there is no
    program point where a retire call would be sound, so no manual scheme
    in Table 1 applies.  OrcGC handles it with annotations alone: the
    descriptor's node reference is just another counted hard link.

    Both queue nodes and operation descriptors are OrcGC-tracked objects;
    the two roles share one record type, with a descriptor using the
    [next] link as its node reference. *)

open Atomicx

module Make (V : sig
  type t
end) =
struct
  type item = V.t

  type node = {
    item : V.t option; (* queue node payload; [None] in descriptors *)
    enq_tid : int;
    deq_tid : int Atomic.t; (* queue node: claimed dequeuer, -1 = none *)
    next : node Link.t; (* queue linkage / descriptor's node reference *)
    phase : int; (* descriptor fields *)
    pending : bool;
    is_enq : bool;
    hdr : Memdom.Hdr.t;
  }

  module O = Orc_core.Orc.Make (struct
    type t = node

    let hdr n = n.hdr
    let iter_links n f = f n.next
  end)

  type t = {
    head : node Link.t;
    tail : node Link.t;
    state : node Link.t array; (* per-thread operation descriptors *)
    orc : O.t;
    alloc : Memdom.Alloc.t;
  }

  let scheme_name = "orc"

  let item_of n =
    Memdom.Hdr.check_access n.hdr;
    n.item

  let next_of n =
    Memdom.Hdr.check_access n.hdr;
    n.next

  let mk_node v etid hdr =
    {
      item = Some v;
      enq_tid = etid;
      deq_tid = Atomic.make (-1);
      next = Link.make Link.Null;
      phase = -1;
      pending = false;
      is_enq = false;
      hdr;
    }

  let mk_desc ~phase ~pending ~is_enq ~node g hdr =
    {
      item = None;
      enq_tid = -1;
      deq_tid = Atomic.make (-1);
      next =
        (match node with
        | Some n -> O.new_link g (Link.Ptr n)
        | None -> Link.make Link.Null);
      phase;
      pending;
      is_enq;
      hdr;
    }

  let create ?(mode = Memdom.Alloc.System) () =
    let alloc = Memdom.Alloc.create ~mode "orc_kp_queue" in
    let orc = O.create alloc in
    O.with_guard orc (fun g ->
        let sp =
          O.alloc_node g (fun hdr ->
              {
                item = None;
                enq_tid = -1;
                deq_tid = Atomic.make (-1);
                next = Link.make Link.Null;
                phase = -1;
                pending = false;
                is_enq = false;
                hdr;
              })
        in
        let sentinel = O.Ptr.node_exn sp in
        let dp = O.ptr g in
        let state =
          Array.init Registry.max_threads (fun _ ->
              let d =
                O.alloc_node_into g dp
                  (mk_desc ~phase:(-1) ~pending:false ~is_enq:true ~node:None g)
              in
              O.new_link g (Link.Ptr d))
        in
        {
          head = O.new_link g (Link.Ptr sentinel);
          tail = O.new_link g (Link.Ptr sentinel);
          state;
          orc;
          alloc;
        })

  (* Working pointer set for one operation. *)
  type cursor = {
    lhead : O.Ptr.t;
    ltail : O.Ptr.t;
    lnext : O.Ptr.t;
    sp : O.Ptr.t; (* a state descriptor *)
    dn : O.Ptr.t; (* a descriptor's recorded node *)
    dp : O.Ptr.t; (* freshly allocated descriptors *)
  }

  let cursor g =
    {
      lhead = O.ptr g;
      ltail = O.ptr g;
      lnext = O.ptr g;
      sp = O.ptr g;
      dn = O.ptr g;
      dp = O.ptr g;
    }

  let max_phase t g cu =
    let m = ref (-1) in
    for i = 0 to Registry.high_water () - 1 do
      O.load g t.state.(i) cu.sp;
      match O.Ptr.node cu.sp with
      | Some d -> if d.phase > !m then m := d.phase
      | None -> ()
    done;
    !m

  let is_still_pending t g cu i ph =
    O.load g t.state.(i) cu.sp;
    match O.Ptr.node cu.sp with
    | Some d -> d.pending && d.phase <= ph
    | None -> false

  let help_finish_enq t g cu =
    O.load g t.tail cu.ltail;
    let last = O.Ptr.node_exn cu.ltail in
    O.load g (next_of last) cu.lnext;
    match O.Ptr.node cu.lnext with
    | None -> ()
    | Some nx ->
        let etid = nx.enq_tid in
        if etid >= 0 then begin
          O.load g t.state.(etid) cu.sp;
          let d = O.Ptr.node_exn cu.sp in
          if Link.get t.tail == O.Ptr.state cu.ltail then begin
            O.load g (next_of d) cu.dn;
            match O.Ptr.node cu.dn with
            | Some dnode when dnode == nx ->
                let nd =
                  O.alloc_node_into g cu.dp
                    (mk_desc ~phase:d.phase ~pending:false ~is_enq:true
                       ~node:(Some nx) g)
                in
                ignore
                  (O.cas g t.state.(etid) ~expected:(O.Ptr.state cu.sp)
                     ~desired:(Link.Ptr nd));
                ignore
                  (O.cas g t.tail ~expected:(O.Ptr.state cu.ltail)
                     ~desired:(Link.Ptr nx))
            | Some _ | None -> ()
          end
        end

  let help_enq t g cu i ph =
    let rec loop () =
      if is_still_pending t g cu i ph then begin
        O.load g t.tail cu.ltail;
        let last = O.Ptr.node_exn cu.ltail in
        O.load g (next_of last) cu.lnext;
        if Link.get t.tail == O.Ptr.state cu.ltail then
          if O.Ptr.is_null cu.lnext then begin
            if is_still_pending t g cu i ph then begin
              (* cu.sp now holds thread i's descriptor *)
              let d = O.Ptr.node_exn cu.sp in
              O.load g (next_of d) cu.dn;
              match O.Ptr.node cu.dn with
              | Some n ->
                  if
                    O.cas g (next_of last) ~expected:(O.Ptr.state cu.lnext)
                      ~desired:(Link.Ptr n)
                  then help_finish_enq t g cu
                  else loop ()
              | None -> loop ()
            end
          end
          else begin
            help_finish_enq t g cu;
            loop ()
          end
        else loop ()
      end
    in
    loop ()

  let help_finish_deq t g cu =
    O.load g t.head cu.lhead;
    let first = O.Ptr.node_exn cu.lhead in
    O.load g (next_of first) cu.lnext;
    let dtid = Atomic.get first.deq_tid in
    if dtid >= 0 then begin
      O.load g t.state.(dtid) cu.sp;
      let d = O.Ptr.node_exn cu.sp in
      if
        Link.get t.head == O.Ptr.state cu.lhead
        && not (O.Ptr.is_null cu.lnext)
      then begin
        O.load g (next_of d) cu.dn;
        let nd =
          O.alloc_node_into g cu.dp
            (mk_desc ~phase:d.phase ~pending:false ~is_enq:false
               ~node:(O.Ptr.node cu.dn) g)
        in
        ignore
          (O.cas g t.state.(dtid) ~expected:(O.Ptr.state cu.sp)
             ~desired:(Link.Ptr nd));
        ignore
          (O.cas g t.head ~expected:(O.Ptr.state cu.lhead)
             ~desired:(O.Ptr.state cu.lnext))
      end
    end

  let help_deq t g cu i ph =
    let rec loop () =
      if is_still_pending t g cu i ph then begin
        O.load g t.head cu.lhead;
        let first = O.Ptr.node_exn cu.lhead in
        O.load g t.tail cu.ltail;
        O.load g (next_of first) cu.lnext;
        if Link.get t.head == O.Ptr.state cu.lhead then
          if O.Ptr.same_node cu.lhead cu.ltail then
            if O.Ptr.is_null cu.lnext then begin
              (* empty: complete i's op with no node *)
              O.load g t.state.(i) cu.sp;
              let d = O.Ptr.node_exn cu.sp in
              if d.pending && d.phase <= ph then begin
                if
                  Link.get t.tail == O.Ptr.state cu.ltail
                then begin
                  let nd =
                    O.alloc_node_into g cu.dp
                      (mk_desc ~phase:d.phase ~pending:false ~is_enq:false
                         ~node:None g)
                  in
                  ignore
                    (O.cas g t.state.(i) ~expected:(O.Ptr.state cu.sp)
                       ~desired:(Link.Ptr nd))
                end;
                loop ()
              end
            end
            else begin
              (* tail lagging: finish the in-flight enqueue first *)
              help_finish_enq t g cu;
              loop ()
            end
          else begin
            O.load g t.state.(i) cu.sp;
            let d = O.Ptr.node_exn cu.sp in
            if d.pending && d.phase <= ph then begin
              O.load g (next_of d) cu.dn;
              if Link.get t.head == O.Ptr.state cu.lhead then begin
                let recorded =
                  match O.Ptr.node cu.dn with
                  | Some x -> x == first
                  | None -> false
                in
                let proceed =
                  recorded
                  ||
                  let nd =
                    O.alloc_node_into g cu.dp
                      (mk_desc ~phase:d.phase ~pending:true ~is_enq:false
                         ~node:(Some first) g)
                  in
                  O.cas g t.state.(i) ~expected:(O.Ptr.state cu.sp)
                    ~desired:(Link.Ptr nd)
                in
                if proceed then begin
                  ignore (Atomic.compare_and_set first.deq_tid (-1) i);
                  help_finish_deq t g cu
                end;
                loop ()
              end
              else loop ()
            end
          end
        else loop ()
      end
    in
    loop ()

  let help t g cu ph =
    for i = 0 to Registry.high_water () - 1 do
      O.load g t.state.(i) cu.sp;
      match O.Ptr.node cu.sp with
      | Some d when d.pending && d.phase <= ph ->
          if d.is_enq then help_enq t g cu i ph else help_deq t g cu i ph
      | Some _ | None -> ()
    done

  let enqueue q v =
    O.with_guard q.orc @@ fun g ->
    let tid = Registry.tid () in
    let cu = cursor g in
    let ph = max_phase q g cu + 1 in
    let np = O.ptr g in
    let n = O.alloc_node_into g np (mk_node v tid) in
    let d =
      O.alloc_node_into g cu.dp
        (mk_desc ~phase:ph ~pending:true ~is_enq:true ~node:(Some n) g)
    in
    O.store g q.state.(tid) (Link.Ptr d);
    help q g cu ph;
    help_finish_enq q g cu

  let dequeue q =
    O.with_guard q.orc @@ fun g ->
    let tid = Registry.tid () in
    let cu = cursor g in
    let ph = max_phase q g cu + 1 in
    let d =
      O.alloc_node_into g cu.dp
        (mk_desc ~phase:ph ~pending:true ~is_enq:false ~node:None g)
    in
    O.store g q.state.(tid) (Link.Ptr d);
    help q g cu ph;
    help_finish_deq q g cu;
    O.load g q.state.(tid) cu.sp;
    let d = O.Ptr.node_exn cu.sp in
    O.load g (next_of d) cu.dn;
    match O.Ptr.node cu.dn with
    | None -> None (* empty queue *)
    | Some first ->
        O.load g (next_of first) cu.lnext;
        item_of (O.Ptr.node_exn cu.lnext)

  let destroy q =
    O.with_guard q.orc @@ fun g ->
    O.store g q.head Link.Null;
    O.store g q.tail Link.Null;
    Array.iter (fun s -> O.store g s Link.Null) q.state

  let unreclaimed q = O.unreclaimed q.orc
  let flush q = O.flush q.orc
  let alloc q = q.alloc
end
