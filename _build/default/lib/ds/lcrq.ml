(** LCRQ — Morrison & Afek's linked concurrent ring queue [21],
    parameterized by a manual reclamation scheme.

    A lock-free list of CRQ segments: each segment is a ring of cells
    driven by fetch-and-add head/tail counters; when a ring fills up or
    livelocks it is *closed* and a fresh segment is linked behind it, MS
    queue style.  The reclamation unit is the segment: the dequeuer that
    swings the queue head past an empty closed segment retires it.

    The paper's C++ uses a double-word CAS on (flags, index, value)
    cells; here a cell is an immutable boxed record in an [Atomic.t], so
    a single physical CAS covers all three fields.

    Note: data structures built on fetch-and-add like this one are
    exactly the class that normalized-form automatic schemes
    (FreeAccess/AOA) cannot handle (§2) — OrcGC and the manual schemes
    can. *)

open Atomicx

let ring_size = 128
let closed_bit = 1 lsl 62
let idx_mask = closed_bit - 1

module Make (V : sig
  type t
end)
(R : Reclaim.Scheme_intf.MAKER) =
struct
  type item = V.t

  type cell = { safe : bool; cidx : int; value : V.t option }

  type node = {
    ring : cell Atomic.t array;
    qhead : int Atomic.t;
    qtail : int Atomic.t; (* bit 62 = closed *)
    next : node Link.t;
    hdr : Memdom.Hdr.t;
  }

  module S = R (struct
    type t = node

    let hdr n = n.hdr
  end)

  type t = {
    head : node Link.t;
    tail : node Link.t;
    scheme : S.t;
    alloc : Memdom.Alloc.t;
  }

  let scheme_name = S.name

  let ring_of n =
    Memdom.Hdr.check_access n.hdr;
    n.ring

  let next_of n =
    Memdom.Hdr.check_access n.hdr;
    n.next

  let fresh_cell i = { safe = true; cidx = i; value = None }

  let mk_crq ?first alloc =
    let ring = Array.init ring_size (fun i -> Atomic.make (fresh_cell i)) in
    let qtail =
      match first with
      | Some v ->
          Atomic.set ring.(0) { safe = true; cidx = 0; value = Some v };
          1
      | None -> 0
    in
    {
      ring;
      qhead = Atomic.make 0;
      qtail = Atomic.make qtail;
      next = Link.make Link.Null;
      hdr = Memdom.Alloc.hdr alloc ();
    }

  let create ?(mode = Memdom.Alloc.System) () =
    let alloc = Memdom.Alloc.create ~mode "lcrq" in
    let scheme = S.create ~max_hps:2 alloc in
    let crq = mk_crq alloc in
    { head = Link.make (Link.Ptr crq); tail = Link.make (Link.Ptr crq); scheme; alloc }

  let rec close_crq crq =
    let t = Atomic.get crq.qtail in
    if t land closed_bit = 0 then
      if not (Atomic.compare_and_set crq.qtail t (t lor closed_bit)) then
        close_crq crq

  (* Try to enqueue into one segment; [`Closed] means a new segment is
     needed. *)
  let enq_crq crq v =
    let rec loop attempts =
      if attempts > 4 * ring_size then begin
        close_crq crq;
        `Closed
      end
      else
        let t = Atomic.fetch_and_add crq.qtail 1 in
        if t land closed_bit <> 0 then `Closed
        else begin
          let cell = (ring_of crq).(t mod ring_size) in
          let c = Atomic.get cell in
          let ok =
            match c.value with
            | None -> c.cidx <= t && (c.safe || Atomic.get crq.qhead <= t)
            | Some _ -> false
          in
          if
            ok
            && Atomic.compare_and_set cell c
                 { safe = true; cidx = t; value = Some v }
          then `Ok
          else if t - Atomic.get crq.qhead >= ring_size then begin
            close_crq crq;
            `Closed
          end
          else loop (attempts + 1)
        end
    in
    loop 0

  (* Head passed tail: bring tail forward so emptiness is observable. *)
  let rec fix_state crq =
    let h = Atomic.get crq.qhead in
    let t = Atomic.get crq.qtail in
    if h > t land idx_mask then
      if not (Atomic.compare_and_set crq.qtail t (t land closed_bit lor h))
      then fix_state crq

  let rec deq_crq crq =
    let h = Atomic.fetch_and_add crq.qhead 1 in
    let cell = (ring_of crq).(h mod ring_size) in
    let rec cell_loop () =
      let c = Atomic.get cell in
      match c.value with
      | Some v ->
          if c.cidx = h then
            if
              Atomic.compare_and_set cell c
                { safe = c.safe; cidx = h + ring_size; value = None }
            then `Got v
            else cell_loop ()
          else if Atomic.compare_and_set cell c { c with safe = false } then
            `Skip
          else cell_loop ()
      | None ->
          if
            Atomic.compare_and_set cell c
              { safe = c.safe; cidx = h + ring_size; value = None }
          then `Skip
          else cell_loop ()
    in
    match cell_loop () with
    | `Got v -> Some v
    | `Skip ->
        let t = Atomic.get crq.qtail land idx_mask in
        if t <= h + 1 then begin
          fix_state crq;
          None
        end
        else deq_crq crq

  let enqueue q v =
    let tid = Registry.tid () in
    S.begin_op q.scheme ~tid;
    let rec loop () =
      let ltail_st = S.get_protected q.scheme ~tid ~idx:0 q.tail in
      match Link.target ltail_st with
      | None -> assert false
      | Some crq -> (
          match Link.get (next_of crq) with
          | Link.Ptr _ as nx ->
              (* tail is lagging *)
              ignore (Link.cas q.tail ltail_st nx);
              loop ()
          | Link.Null -> (
              match enq_crq crq v with
              | `Ok -> ()
              | `Closed ->
                  let ncrq = mk_crq ~first:v q.alloc in
                  if Link.cas (next_of crq) Link.Null (Link.Ptr ncrq) then
                    ignore (Link.cas q.tail ltail_st (Link.Ptr ncrq))
                  else begin
                    (* lost the link race: never published *)
                    Memdom.Alloc.free q.alloc ncrq.hdr;
                    loop ()
                  end)
          | Link.Mark _ | Link.Flag _ | Link.Tag _ | Link.FlagTag _
          | Link.Poison ->
              assert false)
    in
    loop ();
    S.end_op q.scheme ~tid

  let dequeue q =
    let tid = Registry.tid () in
    S.begin_op q.scheme ~tid;
    let rec loop () =
      let lhead_st = S.get_protected q.scheme ~tid ~idx:0 q.head in
      match Link.target lhead_st with
      | None -> assert false
      | Some crq -> (
          match deq_crq crq with
          | Some v -> Some v
          | None -> (
              let next_st = S.get_protected q.scheme ~tid ~idx:1 (next_of crq) in
              match Link.target next_st with
              | None -> None (* truly empty *)
              | Some _ -> (
                  (* a successor exists: drain once more, then advance *)
                  match deq_crq crq with
                  | Some v -> Some v
                  | None ->
                      (* make sure the tail is past this segment before it
                         can be retired: tail is a root reference too *)
                      let tail_st = Link.get q.tail in
                      (match Link.target tail_st with
                      | Some tl when tl == crq ->
                          ignore (Link.cas q.tail tail_st next_st)
                      | Some _ | None -> ());
                      if Link.cas q.head lhead_st next_st then
                        S.retire q.scheme ~tid crq;
                      loop ())))
    in
    let r = loop () in
    S.end_op q.scheme ~tid;
    r

  let destroy q =
    let rec drain () = match dequeue q with Some _ -> drain () | None -> () in
    drain ();
    (match Link.target (Link.get q.head) with
    | Some crq -> Memdom.Alloc.free q.alloc crq.hdr
    | None -> ());
    Link.set q.head Link.Null;
    Link.set q.tail Link.Null;
    S.flush q.scheme

  let unreclaimed q = S.unreclaimed q.scheme
  let flush q = S.flush q.scheme
  let alloc q = q.alloc
end
