(** LCRQ with OrcGC — segment lifetime managed entirely by hard-link
    counts: the queue's head/tail roots and the previous segment's [next]
    link are the only references, so a segment is reclaimed exactly when
    both roots have moved past it and no thread protects it.  The ring
    cells themselves hold plain values, not tracked objects.

    This queue uses fetch-and-add, which places it outside the
    Timnat–Petrank normalized form — FreeAccess and AOA cannot be applied
    to it (§2), while OrcGC needs only the type annotations. *)

open Atomicx

let ring_size = Lcrq.ring_size
let closed_bit = Lcrq.closed_bit
let idx_mask = Lcrq.idx_mask

module Make (V : sig
  type t
end) =
struct
  type item = V.t

  type cell = { safe : bool; cidx : int; value : V.t option }

  type node = {
    ring : cell Atomic.t array;
    qhead : int Atomic.t;
    qtail : int Atomic.t;
    next : node Link.t;
    hdr : Memdom.Hdr.t;
  }

  module O = Orc_core.Orc.Make (struct
    type t = node

    let hdr n = n.hdr
    let iter_links n f = f n.next
  end)

  type t = {
    head : node Link.t;
    tail : node Link.t;
    orc : O.t;
    alloc : Memdom.Alloc.t;
  }

  let scheme_name = "orc"

  let ring_of n =
    Memdom.Hdr.check_access n.hdr;
    n.ring

  let next_of n =
    Memdom.Hdr.check_access n.hdr;
    n.next

  let fresh_cell i = { safe = true; cidx = i; value = None }

  let mk_crq ?first hdr =
    let ring = Array.init ring_size (fun i -> Atomic.make (fresh_cell i)) in
    let qtail =
      match first with
      | Some v ->
          Atomic.set ring.(0) { safe = true; cidx = 0; value = Some v };
          1
      | None -> 0
    in
    {
      ring;
      qhead = Atomic.make 0;
      qtail = Atomic.make qtail;
      next = Link.make Link.Null;
      hdr;
    }

  let create ?(mode = Memdom.Alloc.System) () =
    let alloc = Memdom.Alloc.create ~mode "orc_lcrq" in
    let orc = O.create alloc in
    O.with_guard orc (fun g ->
        let cp = O.alloc_node g (mk_crq ?first:None) in
        let crq = O.Ptr.node_exn cp in
        {
          head = O.new_link g (Link.Ptr crq);
          tail = O.new_link g (Link.Ptr crq);
          orc;
          alloc;
        })

  let rec close_crq crq =
    let t = Atomic.get crq.qtail in
    if t land closed_bit = 0 then
      if not (Atomic.compare_and_set crq.qtail t (t lor closed_bit)) then
        close_crq crq

  let enq_crq crq v =
    let rec loop attempts =
      if attempts > 4 * ring_size then begin
        close_crq crq;
        `Closed
      end
      else
        let t = Atomic.fetch_and_add crq.qtail 1 in
        if t land closed_bit <> 0 then `Closed
        else begin
          let cell = (ring_of crq).(t mod ring_size) in
          let c = Atomic.get cell in
          let ok =
            match c.value with
            | None -> c.cidx <= t && (c.safe || Atomic.get crq.qhead <= t)
            | Some _ -> false
          in
          if
            ok
            && Atomic.compare_and_set cell c
                 { safe = true; cidx = t; value = Some v }
          then `Ok
          else if t - Atomic.get crq.qhead >= ring_size then begin
            close_crq crq;
            `Closed
          end
          else loop (attempts + 1)
        end
    in
    loop 0

  let rec fix_state crq =
    let h = Atomic.get crq.qhead in
    let t = Atomic.get crq.qtail in
    if h > t land idx_mask then
      if not (Atomic.compare_and_set crq.qtail t (t land closed_bit lor h))
      then fix_state crq

  let rec deq_crq crq =
    let h = Atomic.fetch_and_add crq.qhead 1 in
    let cell = (ring_of crq).(h mod ring_size) in
    let rec cell_loop () =
      let c = Atomic.get cell in
      match c.value with
      | Some v ->
          if c.cidx = h then
            if
              Atomic.compare_and_set cell c
                { safe = c.safe; cidx = h + ring_size; value = None }
            then `Got v
            else cell_loop ()
          else if Atomic.compare_and_set cell c { c with safe = false } then
            `Skip
          else cell_loop ()
      | None ->
          if
            Atomic.compare_and_set cell c
              { safe = c.safe; cidx = h + ring_size; value = None }
          then `Skip
          else cell_loop ()
    in
    match cell_loop () with
    | `Got v -> Some v
    | `Skip ->
        let t = Atomic.get crq.qtail land idx_mask in
        if t <= h + 1 then begin
          fix_state crq;
          None
        end
        else deq_crq crq

  let enqueue q v =
    O.with_guard q.orc @@ fun g ->
    let ltail = O.ptr g and lnext = O.ptr g in
    let np = O.ptr g in
    let rec loop () =
      O.load g q.tail ltail;
      let crq = O.Ptr.node_exn ltail in
      O.load g (next_of crq) lnext;
      if not (O.Ptr.is_null lnext) then begin
        ignore
          (O.cas g q.tail ~expected:(O.Ptr.state ltail)
             ~desired:(O.Ptr.state lnext));
        loop ()
      end
      else
        match enq_crq crq v with
        | `Ok -> ()
        | `Closed ->
            let ncrq = O.alloc_node_into g np (mk_crq ~first:v) in
            if
              O.cas g (next_of crq) ~expected:(O.Ptr.state lnext)
                ~desired:(Link.Ptr ncrq)
            then
              ignore
                (O.cas g q.tail ~expected:(O.Ptr.state ltail)
                   ~desired:(Link.Ptr ncrq))
            else loop ()
    in
    loop ()

  let dequeue q =
    O.with_guard q.orc @@ fun g ->
    let lhead = O.ptr g and lnext = O.ptr g and ltail = O.ptr g in
    let rec loop () =
      O.load g q.head lhead;
      let crq = O.Ptr.node_exn lhead in
      match deq_crq crq with
      | Some v -> Some v
      | None -> (
          O.load g (next_of crq) lnext;
          if O.Ptr.is_null lnext then None
          else
            match deq_crq crq with
            | Some v -> Some v
            | None ->
                O.load g q.tail ltail;
                if O.Ptr.same_node ltail lhead then
                  ignore
                    (O.cas g q.tail ~expected:(O.Ptr.state ltail)
                       ~desired:(O.Ptr.state lnext));
                ignore
                  (O.cas g q.head ~expected:(O.Ptr.state lhead)
                     ~desired:(O.Ptr.state lnext));
                loop ())
    in
    loop ()

  let destroy q =
    O.with_guard q.orc @@ fun g ->
    O.store g q.head Link.Null;
    O.store g q.tail Link.Null

  let unreclaimed q = O.unreclaimed q.orc
  let flush q = O.flush q.orc
  let alloc q = q.alloc
end
