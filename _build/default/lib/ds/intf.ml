(** Common signatures of the benchable data structures.

    Every queue and every ordered set in this library exposes the same
    surface, so the test batteries and the benchmark harness can iterate
    over scheme × structure combinations uniformly.  The memory
    accounting entry points ([alloc], [unreclaimed], [flush]) are part of
    the interface on purpose: the paper's claims are as much about
    *unreclaimed objects* as about throughput, and every structure must
    be able to prove leak-freedom after [destroy]. *)

module type QUEUE = sig
  type t

  type item
  (** Payload type (the functor argument [V.t]). *)

  val scheme_name : string
  (** Reclamation scheme label used in benchmark tables ("hp", "orc", ...). *)

  val create : ?mode:Memdom.Alloc.mode -> unit -> t
  (** Fresh queue with its own allocator context (default
      [Memdom.Alloc.System]: access after free raises). *)

  val enqueue : t -> item -> unit
  val dequeue : t -> item option

  val destroy : t -> unit
  (** Quiesced teardown: release every node the structure still owns.
      After [destroy] (plus {!flush} for manual schemes),
      [Memdom.Alloc.live (alloc t) = 0]. *)

  val unreclaimed : t -> int
  (** Nodes retired but not yet freed — the paper's bounded quantity. *)

  val flush : t -> unit
  (** Quiesced drain of the underlying scheme (tests/shutdown only). *)

  val alloc : t -> Memdom.Alloc.t
end

module type SET = sig
  type t

  val scheme_name : string
  val create : ?mode:Memdom.Alloc.mode -> unit -> t

  val add : t -> int -> bool
  (** [true] iff the key was absent.  Keys must avoid the sentinel values
      (structure-specific, always including [min_int]/[max_int]). *)

  val remove : t -> int -> bool
  (** [true] iff this call logically deleted the key. *)

  val contains : t -> int -> bool

  val to_list : t -> int list
  (** Quiesced: the current keys in ascending order. *)

  val size : t -> int

  val destroy : t -> unit
  val unreclaimed : t -> int
  val flush : t -> unit
  val alloc : t -> Memdom.Alloc.t
end
