(** Michael's lock-free hash table [18] (same paper as the list):
    fixed-size array of lock-free list buckets sharing one scheme
    instance, one allocator and one tail sentinel.  Parameterized by a
    manual reclamation scheme. *)

val default_buckets : int

module Make (R : Reclaim.Scheme_intf.MAKER) : Intf.SET
