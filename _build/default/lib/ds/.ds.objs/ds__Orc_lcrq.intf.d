lib/ds/orc_lcrq.mli: Intf
