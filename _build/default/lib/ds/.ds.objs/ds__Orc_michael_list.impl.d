lib/ds/orc_michael_list.ml: Atomicx Link List Memdom Orc_core
