lib/ds/lcrq.ml: Array Atomic Atomicx Link Memdom Reclaim Registry
