lib/ds/orc_kp_queue.ml: Array Atomic Atomicx Link Memdom Orc_core Registry
