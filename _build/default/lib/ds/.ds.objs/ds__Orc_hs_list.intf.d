lib/ds/orc_hs_list.mli: Intf
