lib/ds/orc_ms_queue.mli: Intf
