lib/ds/hash_map.mli: Intf Reclaim
