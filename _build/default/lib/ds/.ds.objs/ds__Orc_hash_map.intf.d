lib/ds/orc_hash_map.mli: Intf
