lib/ds/orc_lcrq.ml: Array Atomic Atomicx Lcrq Link Memdom Orc_core
