lib/ds/intf.ml: Memdom
