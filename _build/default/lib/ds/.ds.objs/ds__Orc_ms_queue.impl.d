lib/ds/orc_ms_queue.ml: Atomicx Backoff Link Memdom Orc_core
