lib/ds/orc_kp_queue.mli: Intf
