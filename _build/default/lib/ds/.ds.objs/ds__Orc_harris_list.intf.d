lib/ds/orc_harris_list.mli: Intf
