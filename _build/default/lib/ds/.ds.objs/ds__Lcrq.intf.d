lib/ds/lcrq.mli: Intf Reclaim
