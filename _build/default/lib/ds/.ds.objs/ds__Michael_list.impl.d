lib/ds/michael_list.ml: Atomicx Link List Memdom Reclaim Registry
