lib/ds/hash_map.ml: Array Atomicx Link List Memdom Reclaim Registry
