lib/ds/orc_hash_map.ml: Array Atomicx Hash_map Link List Memdom Orc_core
