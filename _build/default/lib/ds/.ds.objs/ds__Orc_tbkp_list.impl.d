lib/ds/orc_tbkp_list.ml: Array Atomic Atomicx Link List Memdom Orc_core Registry
