lib/ds/nm_tree.ml: Atomicx Link List Memdom Reclaim Registry
