lib/ds/orc_harris_list.ml: Atomicx Link List Memdom Orc_core
