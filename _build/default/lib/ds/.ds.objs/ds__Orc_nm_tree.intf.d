lib/ds/orc_nm_tree.mli: Intf
