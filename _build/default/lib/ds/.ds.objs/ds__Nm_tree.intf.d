lib/ds/nm_tree.mli: Intf Reclaim
