lib/ds/skiplist_base.ml: Array Atomicx Link List Memdom Orc_core Registry Rng
