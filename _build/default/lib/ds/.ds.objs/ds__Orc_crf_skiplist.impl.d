lib/ds/orc_crf_skiplist.ml: Skiplist_base
