lib/ds/ms_queue.ml: Atomicx Backoff Link Memdom Reclaim Registry
