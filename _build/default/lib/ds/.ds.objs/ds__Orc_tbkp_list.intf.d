lib/ds/orc_tbkp_list.mli: Intf
