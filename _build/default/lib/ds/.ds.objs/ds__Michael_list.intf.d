lib/ds/michael_list.mli: Intf Reclaim
