lib/ds/orc_turn_queue.ml: Array Atomic Atomicx Link Memdom Orc_core Registry
