lib/ds/orc_michael_list.mli: Intf
