lib/ds/orc_nm_tree.ml: Atomicx Link List Memdom Nm_tree Orc_core
