lib/ds/orc_turn_queue.mli: Intf
