lib/ds/orc_hs_skiplist.ml: Skiplist_base
