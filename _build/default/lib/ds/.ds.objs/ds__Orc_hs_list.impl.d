lib/ds/orc_hs_list.ml: Atomicx Link List Memdom Orc_core
