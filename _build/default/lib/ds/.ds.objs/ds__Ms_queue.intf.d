lib/ds/ms_queue.mli: Intf Reclaim
