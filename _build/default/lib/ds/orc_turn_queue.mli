(** Turn queue — wait-free MPMC queue in the style of Ramalhete &
    Correia's PPoPP'17 poster [26], with OrcGC.

    A documented *reconstruction* (only the poster abstract is
    published): wait-free turn-ordered helping for both operations;
    dequeues are served through a claim/deliver/advance protocol on the
    delivered node.  See DESIGN.md §6.4 for the races the protocol
    closes.  Another obstacle-1 structure: nodes live in queue links,
    three request arrays and claim links simultaneously. *)

module Make (V : sig
  type t
end) : Intf.QUEUE with type item = V.t
