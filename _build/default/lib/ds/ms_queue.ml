(** Michael–Scott lock-free queue [20], parameterized by a *manual*
    reclamation scheme (HP, PTB, PTP, EBR, ...).

    This is the classical target of manual schemes: the dequeuer that
    swings [head] knows the old sentinel just became unreachable and
    calls [retire] at exactly that point.  Hazard indexes: 0 protects the
    head/tail snapshot, 1 the successor. *)

open Atomicx

module Make (V : sig
  type t
end)
(R : Reclaim.Scheme_intf.MAKER) =
struct
  type item = V.t

  type node = {
    item : V.t option; (* [None] only in the initial sentinel *)
    next : node Link.t;
    hdr : Memdom.Hdr.t;
  }

  module S = R (struct
    type t = node

    let hdr n = n.hdr
  end)

  type t = {
    head : node Link.t;
    tail : node Link.t;
    scheme : S.t;
    alloc : Memdom.Alloc.t;
  }

  let scheme_name = S.name

  (* Checked accessors: every dereference validates the node's lifecycle
     so that a reclamation bug raises [Memdom.Hdr.Use_after_free]. *)
  let next_of n =
    Memdom.Hdr.check_access n.hdr;
    n.next

  let item_of n =
    Memdom.Hdr.check_access n.hdr;
    n.item

  let create ?(mode = Memdom.Alloc.System) () =
    let alloc = Memdom.Alloc.create ~mode "ms_queue" in
    let scheme = S.create ~max_hps:4 alloc in
    let sentinel =
      { item = None; next = Link.make Link.Null; hdr = Memdom.Alloc.hdr alloc () }
    in
    {
      head = Link.make (Link.Ptr sentinel);
      tail = Link.make (Link.Ptr sentinel);
      scheme;
      alloc;
    }

  let enqueue q v =
    let tid = Registry.tid () in
    S.begin_op q.scheme ~tid;
    let node =
      { item = Some v; next = Link.make Link.Null; hdr = Memdom.Alloc.hdr q.alloc () }
    in
    let backoff = Backoff.create () in
    let rec loop () =
      let ltail_st = S.get_protected q.scheme ~tid ~idx:0 q.tail in
      match Link.target ltail_st with
      | None -> assert false (* tail is never null *)
      | Some ltail -> (
          match Link.get (next_of ltail) with
          | Link.Null ->
              if Link.cas (next_of ltail) Link.Null (Link.Ptr node) then
                ignore (Link.cas q.tail ltail_st (Link.Ptr node))
              else begin
                Backoff.once backoff;
                loop ()
              end
          | Link.Ptr _ as lnext ->
              (* help: swing the lagging tail forward *)
              ignore (Link.cas q.tail ltail_st lnext);
              loop ()
          | Link.Mark _ | Link.Flag _ | Link.Tag _ | Link.FlagTag _
          | Link.Poison ->
              assert false)
    in
    loop ();
    S.end_op q.scheme ~tid

  let dequeue q =
    let tid = Registry.tid () in
    S.begin_op q.scheme ~tid;
    let backoff = Backoff.create () in
    let rec loop () =
      let lhead_st = S.get_protected q.scheme ~tid ~idx:0 q.head in
      match Link.target lhead_st with
      | None -> assert false
      | Some lhead -> (
          let ltail_st = Link.get q.tail in
          let lnext_st = S.get_protected q.scheme ~tid ~idx:1 (next_of lhead) in
          (* re-validate: head must not have moved while we protected next *)
          if not (Link.get q.head == lhead_st) then loop ()
          else
            match Link.target lnext_st with
            | None ->
                (* empty (head = tail with no successor) *)
                None
            | Some next ->
                if Link.same lhead_st ltail_st then begin
                  (* tail is lagging: help and retry *)
                  ignore (Link.cas q.tail ltail_st lnext_st);
                  loop ()
                end
                else if Link.cas q.head lhead_st lnext_st then begin
                  let v = item_of next in
                  S.retire q.scheme ~tid lhead;
                  v
                end
                else begin
                  Backoff.once backoff;
                  loop ()
                end)
    in
    let r = loop () in
    S.end_op q.scheme ~tid;
    r

  (* Quiesced teardown: drain remaining items, free the sentinel, drain
     the scheme.  After this [Memdom.Alloc.live q.alloc] should be 0. *)
  let destroy q =
    let rec drain () = match dequeue q with Some _ -> drain () | None -> () in
    drain ();
    (match Link.target (Link.get q.head) with
    | Some sentinel -> Memdom.Alloc.free q.alloc sentinel.hdr
    | None -> ());
    Link.set q.head Link.Null;
    Link.set q.tail Link.Null;
    S.flush q.scheme

  let unreclaimed q = S.unreclaimed q.scheme
  let flush q = S.flush q.scheme
  let alloc q = q.alloc
end
