(** Michael's lock-free linked-list set [18] ("Michael-Harris" in the
    paper's figures), parameterized by a manual reclamation scheme.

    This is the one list of the paper's four that manual schemes *can*
    handle: a node is marked (logical delete) and then physically
    unlinked by a single CAS, and only the unlinking thread calls retire,
    so retire's precondition — unreachable from the roots — is decidable
    at a fixed program point.

    Hazard indexes: 0 = curr, 1 = next, 2 = prev node.  Validation is by
    box identity: if [prev.next] still holds the very box we read, it was
    not changed (not even marked) in between — strictly stronger than the
    tag comparison of the C++ original.

    Keys must lie strictly between [min_int] and [max_int] (the sentinel
    keys). *)

open Atomicx

module Make (R : Reclaim.Scheme_intf.MAKER) = struct
  type node = { key : int; next : node Link.t; hdr : Memdom.Hdr.t }

  module S = R (struct
    type t = node

    let hdr n = n.hdr
  end)

  type t = {
    head : node; (* sentinel, never retired *)
    tail : node; (* sentinel, never retired *)
    scheme : S.t;
    alloc : Memdom.Alloc.t;
  }

  let scheme_name = S.name

  let next_of n =
    Memdom.Hdr.check_access n.hdr;
    n.next

  let key_of n =
    Memdom.Hdr.check_access n.hdr;
    n.key

  let create ?(mode = Memdom.Alloc.System) () =
    let alloc = Memdom.Alloc.create ~mode "michael_list" in
    let scheme = S.create ~max_hps:4 alloc in
    let tail =
      { key = max_int; next = Link.make Link.Null; hdr = Memdom.Alloc.hdr alloc () }
    in
    let head =
      {
        key = min_int;
        next = Link.make (Link.Ptr tail);
        hdr = Memdom.Alloc.hdr alloc ();
      }
    in
    { head; tail; scheme; alloc }

  let target_exn st =
    match Link.target st with
    | Some n -> n
    | None -> assert false (* the tail sentinel terminates every search *)

  (* Returns [(found, prev_link, curr_st)] with the curr node protected at
     hazard 0 and its predecessor at hazard 2.  [curr_st] is the unmarked
     box currently stored in [prev_link]. *)
  let rec find t ~tid key =
    let prev_link = ref t.head.next in
    let curr_st = ref (S.get_protected t.scheme ~tid ~idx:0 !prev_link) in
    let restart () = find t ~tid key in
    let rec loop () =
      let curr = target_exn !curr_st in
      let next_st = S.get_protected t.scheme ~tid ~idx:1 (next_of curr) in
      if not (Link.get !prev_link == !curr_st) then restart ()
      else if Link.is_marked next_st then begin
        (* curr is logically deleted: unlink it physically *)
        let unmarked =
          match Link.target next_st with
          | Some nx -> Link.Ptr nx
          | None -> Link.Null
        in
        if Link.cas !prev_link !curr_st unmarked then begin
          S.retire t.scheme ~tid curr;
          curr_st := unmarked;
          S.copy_protection t.scheme ~tid ~src:1 ~dst:0;
          loop ()
        end
        else restart ()
      end
      else if key_of curr >= key then (key_of curr = key, !prev_link, !curr_st)
      else begin
        (* advance: curr becomes prev (copy protections, both held) *)
        S.copy_protection t.scheme ~tid ~src:0 ~dst:2;
        prev_link := next_of curr;
        curr_st := next_st;
        S.copy_protection t.scheme ~tid ~src:1 ~dst:0;
        loop ()
      end
    in
    loop ()

  let check_key key =
    if key = min_int || key = max_int then
      invalid_arg "Michael_list: key must be strictly inside (min_int, max_int)"

  let contains t key =
    check_key key;
    let tid = Registry.tid () in
    S.begin_op t.scheme ~tid;
    let found, _, _ = find t ~tid key in
    S.end_op t.scheme ~tid;
    found

  let add t key =
    check_key key;
    let tid = Registry.tid () in
    S.begin_op t.scheme ~tid;
    let rec loop () =
      let found, prev_link, curr_st = find t ~tid key in
      if found then false
      else
        let node =
          { key; next = Link.make curr_st; hdr = Memdom.Alloc.hdr t.alloc () }
        in
        if Link.cas prev_link curr_st (Link.Ptr node) then true
        else begin
          (* lost the race: the fresh node was never published *)
          Memdom.Alloc.free t.alloc node.hdr;
          loop ()
        end
    in
    let r = loop () in
    S.end_op t.scheme ~tid;
    r

  let remove t key =
    check_key key;
    let tid = Registry.tid () in
    S.begin_op t.scheme ~tid;
    let rec loop () =
      let found, prev_link, curr_st = find t ~tid key in
      if not found then false
      else
        let curr = target_exn curr_st in
        let next_st = S.get_protected t.scheme ~tid ~idx:1 (next_of curr) in
        if Link.is_marked next_st then loop ()
        else
          let marked =
            match Link.target next_st with
            | Some nx -> Link.Mark nx
            | None -> assert false (* found node always precedes tail *)
          in
          if Link.cas (next_of curr) next_st marked then begin
            (* try to unlink; on failure find() will clean up *)
            let unmarked =
              match Link.target next_st with
              | Some nx -> Link.Ptr nx
              | None -> Link.Null
            in
            if Link.cas prev_link curr_st unmarked then
              S.retire t.scheme ~tid curr
            else ignore (find t ~tid key);
            true
          end
          else loop ()
    in
    let r = loop () in
    S.end_op t.scheme ~tid;
    r

  (* Sequential helpers (quiesced): collect the keys of nodes that are
     reachable and not logically deleted. *)
  let to_list t =
    let rec walk acc n =
      match Link.target (Link.get n.next) with
      | None -> List.rev acc
      | Some nx ->
          if nx == t.tail then List.rev acc
          else
            let deleted = Link.is_marked (Link.get nx.next) in
            walk (if deleted then acc else key_of nx :: acc) nx
    in
    walk [] t.head

  let size t = List.length (to_list t)

  let destroy t =
    let rec free_chain n =
      if n != t.tail then begin
        let nx = target_exn (Link.get n.next) in
        Memdom.Alloc.free t.alloc n.hdr;
        free_chain nx
      end
      else Memdom.Alloc.free t.alloc n.hdr
    in
    (match Link.target (Link.get t.head.next) with
    | Some n -> free_chain n
    | None -> ());
    Memdom.Alloc.free t.alloc t.head.hdr;
    Link.set t.head.next Link.Null;
    S.flush t.scheme

  let unreclaimed t = S.unreclaimed t.scheme
  let flush t = S.flush t.scheme
  let alloc t = t.alloc
end
