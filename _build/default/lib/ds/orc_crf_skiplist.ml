(** CRF-skip — the paper's new lock-free skip list (§5).

    Once a removed node is unlinked from every level its forward
    pointers are poisoned, isolating it completely: searches restart on
    poison (contains becomes lock-free rather than wait-free) and the
    severed hard links keep the unreclaimed-object count linear instead
    of key-bounded.  See {!Skiplist_base}. *)

module Make () = Skiplist_base.Make (struct
  let poison = true
  let max_level = 14
end)
()
