(** Lock-free skip list base (Herlihy & Shavit [15], after Fraser), with
    OrcGC — instantiated twice:

    - [poison = false]: **HS-skip**.  [contains] descends from the top
      level without ever restarting, walking straight *through* marked
      nodes; removed nodes keep their forward pointers and must stay
      traversable (the paper's obstacle 3: a half-removed node can even
      be re-encountered).  Under OrcGC those frozen forward pointers are
      hard links, so removed nodes can form key-bounded chains — the
      memory-footprint problem §5 measures (19 GB vs <1 GB in the paper).

    - [poison = true]: **CRF-skip**, the paper's new design.  Once the
      remover's find pass has unlinked a victim from every level — after
      which it can never be re-linked, because the edge to a victim is
      the very box both a stale insert and the snip must CAS — the
      victim's forward pointers are poisoned, isolating it completely.
      Searches restart when they step on poison (contains drops to
      lock-free), and the severed links keep unreclaimed memory linear.

    Marks live on the *victim's own* forward pointers; edges pointing at
    a node are only ever clean or poisoned. *)

open Atomicx

exception Restart

module Make (Cfg : sig
  val poison : bool
  val max_level : int (* highest level index; levels are 0..max_level *)
end)
() =
struct
  type node = {
    key : int;
    height : int; (* number of levels this node participates in *)
    next : node Link.t array; (* length = height *)
    hdr : Memdom.Hdr.t;
  }

  module O = Orc_core.Orc.Make (struct
    type t = node

    let hdr n = n.hdr
    let iter_links n f = Array.iter f n.next
  end)

  type t = {
    head : node;
    tail : node;
    head_root : node Link.t;
    tail_root : node Link.t;
    rngs : Rng.t array; (* per-tid level generators *)
    orc : O.t;
    alloc : Memdom.Alloc.t;
  }

  let scheme_name = "orc"
  let levels = Cfg.max_level + 1

  let key_of n =
    Memdom.Hdr.check_access n.hdr;
    n.key

  let next_link n level =
    Memdom.Hdr.check_access n.hdr;
    n.next.(level)

  let create ?(mode = Memdom.Alloc.System) () =
    let alloc =
      Memdom.Alloc.create ~mode
        (if Cfg.poison then "crf_skiplist" else "hs_skiplist")
    in
    let orc = O.create alloc in
    O.with_guard orc (fun g ->
        let tp =
          O.alloc_node g (fun hdr ->
              {
                key = max_int;
                height = levels;
                next = Array.init levels (fun _ -> Link.make Link.Null);
                hdr;
              })
        in
        let tail = O.Ptr.node_exn tp in
        let hp =
          O.alloc_node g (fun hdr ->
              {
                key = min_int;
                height = levels;
                next =
                  Array.init levels (fun _ -> O.new_link g (Link.Ptr tail));
                hdr;
              })
        in
        let head = O.Ptr.node_exn hp in
        {
          head;
          tail;
          head_root = O.new_link g (Link.Ptr head);
          tail_root = O.new_link g (Link.Ptr tail);
          rngs = Array.init Registry.max_threads (fun i -> Rng.create (i + 1));
          orc;
          alloc;
        })

  (* geometric with p = 1/2, capped at the top level *)
  let random_height t =
    let rng = t.rngs.(Registry.tid ()) in
    let rec grow h = if h < levels && Rng.bool rng then grow (h + 1) else h in
    grow 1

  (* Guard-scoped working set for one operation. *)
  type cursor = {
    preds : O.Ptr.t array;
    succs : O.Ptr.t array;
    pred : O.Ptr.t;
    curr : O.Ptr.t;
    succ : O.Ptr.t;
  }

  let cursor g =
    {
      preds = Array.init levels (fun _ -> O.ptr g);
      succs = Array.init levels (fun _ -> O.ptr g);
      pred = O.ptr g;
      curr = O.ptr g;
      succ = O.ptr g;
    }

  (* find: locate the window (preds, succs) around [key] at every level,
     snipping marked nodes from the path as encountered.  Restarts on a
     failed snip or (CRF) a poisoned edge. *)
  let rec find t g key cu =
    match
      O.load g t.head_root cu.pred;
      for level = Cfg.max_level downto 0 do
        O.load g (next_link (O.Ptr.node_exn cu.pred) level) cu.curr;
        if O.Ptr.is_poison cu.curr then raise_notrace Restart;
        let rec step () =
          let c = O.Ptr.node_exn cu.curr in
          O.load g (next_link c level) cu.succ;
          if O.Ptr.is_poison cu.succ then raise_notrace Restart;
          if O.Ptr.is_marked cu.succ then begin
            (* c is logically deleted: snip it from this level *)
            let desired = Link.Ptr (O.Ptr.node_exn cu.succ) in
            if
              O.cas g
                (next_link (O.Ptr.node_exn cu.pred) level)
                ~expected:(O.Ptr.state cu.curr) ~desired
            then begin
              O.assign g cu.curr cu.succ;
              O.Ptr.retag cu.curr desired;
              step ()
            end
            else raise_notrace Restart
          end
          else if key_of c < key then begin
            O.assign g cu.pred cu.curr;
            O.assign g cu.curr cu.succ;
            step ()
          end
        in
        step ();
        O.assign g cu.preds.(level) cu.pred;
        O.assign g cu.succs.(level) cu.curr
      done
    with
    | () -> key_of (O.Ptr.node_exn cu.succs.(0)) = key
    | exception Restart -> find t g key cu

  let check_key key =
    if key = min_int || key = max_int then
      invalid_arg "Skiplist: key out of range"

  let add t key =
    check_key key;
    O.with_guard t.orc @@ fun g ->
    let cu = cursor g in
    let height = random_height t in
    let np = O.ptr g in
    let node = ref None in
    let rec loop () =
      if find t g key cu then false
      else begin
        let n =
          match !node with
          | Some n ->
              (* refresh forward pointers to the new window *)
              for i = 0 to height - 1 do
                O.store g n.next.(i) (O.Ptr.state cu.succs.(i))
              done;
              n
          | None ->
              let n =
                O.alloc_node_into g np (fun hdr ->
                    {
                      key;
                      height;
                      next =
                        Array.init height (fun i ->
                            O.new_link g (O.Ptr.state cu.succs.(i)));
                      hdr;
                    })
              in
              node := Some n;
              n
        in
        if
          O.cas g
            (next_link (O.Ptr.node_exn cu.preds.(0)) 0)
            ~expected:(O.Ptr.state cu.succs.(0)) ~desired:(Link.Ptr n)
        then begin
          (* bottom level linked: the node is in the set; now build the
             express lanes *)
          let rec link level =
            if level >= height then true
            else begin
              let own = Link.get n.next.(level) in
              if Link.is_marked own || Link.is_poison own then true
                (* concurrent remove: stop linking *)
              else begin
                let s = O.Ptr.node_exn cu.succs.(level) in
                let own_ok =
                  match Link.target own with
                  | Some x when x == s -> true
                  | Some _ | None ->
                      O.cas g n.next.(level) ~expected:own
                        ~desired:(Link.Ptr s)
                in
                if
                  own_ok
                  && O.cas g
                       (next_link (O.Ptr.node_exn cu.preds.(level)) level)
                       ~expected:(O.Ptr.state cu.succs.(level))
                       ~desired:(Link.Ptr n)
                then link (level + 1)
                else begin
                  (* window moved: recompute and retry this level *)
                  if not (find t g key cu) then true
                    (* node already removed: done *)
                  else link level
                end
              end
            end
          in
          link 1
        end
        else loop ()
      end
    in
    loop ()

  (* Poison the victim's forward pointers (CRF only).  Caller guarantees
     the victim is unlinked from every level, which is permanent. *)
  let isolate g victim =
    for i = 0 to victim.height - 1 do
      O.store g victim.next.(i) Link.Poison
    done

  let remove t key =
    check_key key;
    O.with_guard t.orc @@ fun g ->
    let cu = cursor g in
    let tmp = O.ptr g in
    if not (find t g key cu) then false
    else begin
      let victim = O.Ptr.node_exn cu.succs.(0) in
      (* mark the upper levels, top down *)
      for level = victim.height - 1 downto 1 do
        let rec mark () =
          O.load g victim.next.(level) tmp;
          if not (O.Ptr.is_marked tmp || O.Ptr.is_poison tmp) then
            if
              not
                (O.cas g victim.next.(level) ~expected:(O.Ptr.state tmp)
                   ~desired:(Link.Mark (O.Ptr.node_exn tmp)))
            then mark ()
        in
        mark ()
      done;
      (* bottom level: the linearization point *)
      let rec bottom () =
        O.load g victim.next.(0) tmp;
        if O.Ptr.is_marked tmp || O.Ptr.is_poison tmp then false
          (* another remover won *)
        else if
          O.cas g victim.next.(0) ~expected:(O.Ptr.state tmp)
            ~desired:(Link.Mark (O.Ptr.node_exn tmp))
        then begin
          (* unlink everywhere; find restarts internally until clean *)
          ignore (find t g key cu);
          if Cfg.poison then isolate g victim;
          true
        end
        else bottom ()
      in
      bottom ()
    end

  (* HS contains: top-down descent, never restarts, walks through marked
     nodes.  CRF contains: same but restarts from scratch on poison. *)
  let contains t key =
    check_key key;
    O.with_guard t.orc @@ fun g ->
    let pred = O.ptr g and curr = O.ptr g and succ = O.ptr g in
    let rec search () =
      match
        O.load g t.head_root pred;
        for level = Cfg.max_level downto 0 do
          O.load g (next_link (O.Ptr.node_exn pred) level) curr;
          if O.Ptr.is_poison curr then raise_notrace Restart;
          let rec step () =
            let c = O.Ptr.node_exn curr in
            O.load g (next_link c level) succ;
            if O.Ptr.is_poison succ then raise_notrace Restart;
            if O.Ptr.is_marked succ then begin
              (* skip the deleted node, traversing its frozen pointer *)
              O.assign g curr succ;
              step ()
            end
            else if key_of c < key then begin
              O.assign g pred curr;
              O.assign g curr succ;
              step ()
            end
          in
          step ()
        done
      with
      | () ->
          let c = O.Ptr.node_exn curr in
          key_of c = key
          && not
               (let st = Link.get (next_link c 0) in
                Link.is_marked st || Link.is_poison st)
      | exception Restart -> search ()
    in
    search ()

  (* Sequential helpers (quiesced): walk the bottom level. *)
  let to_list t =
    let rec walk acc n =
      match Link.target (Link.get n.next.(0)) with
      | None -> List.rev acc
      | Some nx ->
          if nx == t.tail then List.rev acc
          else
            let st = Link.get nx.next.(0) in
            let deleted = Link.is_marked st || Link.is_poison st in
            walk (if deleted then acc else key_of nx :: acc) nx
    in
    walk [] t.head

  let size t = List.length (to_list t)

  let destroy t =
    O.with_guard t.orc (fun g ->
        O.store g t.head_root Link.Null;
        O.store g t.tail_root Link.Null)

  let unreclaimed t = O.unreclaimed t.orc
  let flush t = O.flush t.orc
  let alloc t = t.alloc
end
