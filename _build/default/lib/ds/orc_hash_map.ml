(** Michael's lock-free hash table with OrcGC — bucket heads are root
    links into OrcGC-managed list nodes; the shared tail sentinel is kept
    alive by one extra root.  As everywhere, the only change versus the
    manual variant is the annotations: no retire call exists. *)

open Atomicx

let default_buckets = Hash_map.default_buckets

module Make () = struct
  type node = { key : int; next : node Link.t; hdr : Memdom.Hdr.t }

  module O = Orc_core.Orc.Make (struct
    type t = node

    let hdr n = n.hdr
    let iter_links n f = f n.next
  end)

  type t = {
    buckets : node Link.t array;
    tail : node;
    tail_root : node Link.t;
    orc : O.t;
    alloc : Memdom.Alloc.t;
  }

  let scheme_name = "orc"

  let next_of n =
    Memdom.Hdr.check_access n.hdr;
    n.next

  let key_of n =
    Memdom.Hdr.check_access n.hdr;
    n.key

  let create ?(mode = Memdom.Alloc.System) () =
    let alloc = Memdom.Alloc.create ~mode "orc_hash_map" in
    let orc = O.create alloc in
    O.with_guard orc (fun g ->
        let tp =
          O.alloc_node g (fun hdr ->
              { key = max_int; next = Link.make Link.Null; hdr })
        in
        let tail = O.Ptr.node_exn tp in
        {
          buckets =
            Array.init default_buckets (fun _ ->
                O.new_link g (Link.Ptr tail));
          tail;
          tail_root = O.new_link g (Link.Ptr tail);
          orc;
          alloc;
        })

  let bucket t key =
    t.buckets.((key * 0x2545F4914F6CDD1D) land max_int
               mod Array.length t.buckets)

  let rec find t g key ~prev ~curr ~next =
    let prev_link = ref (bucket t key) in
    O.load g !prev_link curr;
    let restart () = find t g key ~prev ~curr ~next in
    let rec loop () =
      let c = O.Ptr.node_exn curr in
      O.load g (next_of c) next;
      if not (Link.get !prev_link == O.Ptr.state curr) then restart ()
      else if O.Ptr.is_marked next then begin
        let unmarked =
          match O.Ptr.node next with
          | Some nx -> Link.Ptr nx
          | None -> Link.Null
        in
        if O.cas g !prev_link ~expected:(O.Ptr.state curr) ~desired:unmarked
        then begin
          O.assign g curr next;
          O.Ptr.retag curr unmarked;
          loop ()
        end
        else restart ()
      end
      else if key_of c >= key then (key_of c = key, !prev_link)
      else begin
        O.assign g prev curr;
        O.assign g curr next;
        prev_link := next_of c;
        loop ()
      end
    in
    loop ()

  let check_key key =
    if key = min_int || key = max_int then
      invalid_arg "Orc_hash_map: key out of range"

  let contains t key =
    check_key key;
    O.with_guard t.orc (fun g ->
        let prev = O.ptr g and curr = O.ptr g and next = O.ptr g in
        fst (find t g key ~prev ~curr ~next))

  let add t key =
    check_key key;
    O.with_guard t.orc @@ fun g ->
    let prev = O.ptr g and curr = O.ptr g and next = O.ptr g in
    let node = ref None in
    let rec loop () =
      let found, prev_link = find t g key ~prev ~curr ~next in
      if found then false
      else begin
        let n =
          match !node with
          | Some n -> n
          | None ->
              let p =
                O.alloc_node g (fun hdr ->
                    { key; next = Link.make Link.Null; hdr })
              in
              let n = O.Ptr.node_exn p in
              node := Some n;
              n
        in
        O.store g n.next (O.Ptr.state curr);
        if O.cas g prev_link ~expected:(O.Ptr.state curr) ~desired:(Link.Ptr n)
        then true
        else loop ()
      end
    in
    loop ()

  let remove t key =
    check_key key;
    O.with_guard t.orc @@ fun g ->
    let prev = O.ptr g and curr = O.ptr g and next = O.ptr g in
    let rec loop () =
      let found, prev_link = find t g key ~prev ~curr ~next in
      if not found then false
      else begin
        let c = O.Ptr.node_exn curr in
        O.load g (next_of c) next;
        if O.Ptr.is_marked next then loop ()
        else
          let nx = O.Ptr.node_exn next in
          if
            O.cas g (next_of c) ~expected:(O.Ptr.state next)
              ~desired:(Link.Mark nx)
          then begin
            if
              not
                (O.cas g prev_link ~expected:(O.Ptr.state curr)
                   ~desired:(Link.Ptr nx))
            then ignore (find t g key ~prev ~curr ~next);
            true
          end
          else loop ()
      end
    in
    loop ()

  let to_list t =
    let acc = ref [] in
    Array.iter
      (fun head ->
        let rec walk st =
          match Link.target st with
          | None -> ()
          | Some n ->
              if n != t.tail then begin
                if not (Link.is_marked (Link.get n.next)) then
                  acc := key_of n :: !acc;
                walk (Link.get n.next)
              end
        in
        walk (Link.get head))
      t.buckets;
    List.sort compare !acc

  let size t = List.length (to_list t)

  let destroy t =
    O.with_guard t.orc (fun g ->
        Array.iter (fun head -> O.store g head Link.Null) t.buckets;
        O.store g t.tail_root Link.Null)

  let unreclaimed t = O.unreclaimed t.orc
  let flush t = O.flush t.orc
  let alloc t = t.alloc
end
