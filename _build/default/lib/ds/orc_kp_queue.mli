(** Kogan & Petrank's wait-free MPMC queue [17], with OrcGC.

    The paper's obstacle-1 structure (§2): nodes are referenced from
    [head]/[tail] *and* from the helping descriptor array, with unlink
    orders depending on the interleaving — no manual scheme in Table 1
    applies; OrcGC handles it with annotations alone.  Operation
    descriptors are themselves OrcGC-tracked objects. *)

module Make (V : sig
  type t
end) : Intf.QUEUE with type item = V.t
