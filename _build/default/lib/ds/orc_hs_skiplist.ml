(** Herlihy–Shavit lock-free skip list with OrcGC (paper §5).

    [contains] never restarts and traverses the frozen forward pointers
    of removed nodes, so removed nodes can chain to each other — the
    key-bounded unreclaimed-memory behaviour the paper measures against
    CRF-skip.  See {!Skiplist_base}. *)

module Make () = Skiplist_base.Make (struct
  let poison = false
  let max_level = 14
end)
()
