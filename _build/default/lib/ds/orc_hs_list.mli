(** Herlihy & Shavit's nonblocking list with wait-free lookups [15],
    with OrcGC.  [contains] walks straight through marked nodes without
    restarting, which requires removed nodes' pointers to stay valid
    (obstacle 2) — a removed node's outgoing hard link persists until
    the node itself is reclaimed. *)

module Make () : Intf.SET
