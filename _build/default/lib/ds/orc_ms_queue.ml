(** Michael–Scott queue with OrcGC (paper Algorithm 1).

    The point of the exercise: compared with {!Ms_queue} there is *no
    retire call anywhere*.  The dequeue simply swings [head]; OrcGC
    notices the old sentinel's hard-link count reach zero and reclaims it
    once no thread protects it.  The only changes versus the textbook
    algorithm are type annotations: links are orc-managed and local
    references live in guard-scoped [Ptr] handles. *)

open Atomicx

module Make (V : sig
  type t
end) =
struct
  type item = V.t

  type node = { item : V.t option; next : node Link.t; hdr : Memdom.Hdr.t }

  module O = Orc_core.Orc.Make (struct
    type t = node

    let hdr n = n.hdr
    let iter_links n f = f n.next
  end)

  type t = {
    head : node Link.t;
    tail : node Link.t;
    orc : O.t;
    alloc : Memdom.Alloc.t;
  }

  let scheme_name = "orc"

  let next_of n =
    Memdom.Hdr.check_access n.hdr;
    n.next

  let item_of n =
    Memdom.Hdr.check_access n.hdr;
    n.item

  let create ?(mode = Memdom.Alloc.System) () =
    let alloc = Memdom.Alloc.create ~mode "orc_ms_queue" in
    let orc = O.create alloc in
    O.with_guard orc (fun g ->
        let s =
          O.alloc_node g (fun hdr -> { item = None; next = Link.make Link.Null; hdr })
        in
        let sentinel = O.Ptr.node_exn s in
        let head = O.new_link g (Link.Ptr sentinel) in
        let tail = O.new_link g (Link.Ptr sentinel) in
        { head; tail; orc; alloc })

  let enqueue q v =
    O.with_guard q.orc @@ fun g ->
    let new_node =
      O.alloc_node g (fun hdr -> { item = Some v; next = Link.make Link.Null; hdr })
    in
    let nn = O.Ptr.node_exn new_node in
    let ltail = O.ptr g in
    let lnext = O.ptr g in
    let backoff = Backoff.create () in
    let rec loop () =
      O.load g q.tail ltail;
      let tl = O.Ptr.node_exn ltail in
      O.load g (next_of tl) lnext;
      if O.Ptr.is_null lnext then begin
        if O.cas g (next_of tl) ~expected:Link.Null ~desired:(Link.Ptr nn) then
          ignore
            (O.cas g q.tail ~expected:(O.Ptr.state ltail) ~desired:(Link.Ptr nn))
        else begin
          Backoff.once backoff;
          loop ()
        end
      end
      else begin
        ignore
          (O.cas g q.tail ~expected:(O.Ptr.state ltail)
             ~desired:(O.Ptr.state lnext));
        loop ()
      end
    in
    loop ()

  let dequeue q =
    O.with_guard q.orc @@ fun g ->
    let node = O.ptr g in
    let ltail = O.ptr g in
    let lnext = O.ptr g in
    let backoff = Backoff.create () in
    let rec loop () =
      O.load g q.head node;
      O.load g q.tail ltail;
      if O.Ptr.same_node node ltail then begin
        (* Either empty or an in-flight enqueue left the tail lagging;
           help it forward so the element is not missed. *)
        O.load g (next_of (O.Ptr.node_exn node)) lnext;
        if O.Ptr.is_null lnext then None
        else begin
          ignore
            (O.cas g q.tail ~expected:(O.Ptr.state ltail)
               ~desired:(O.Ptr.state lnext));
          loop ()
        end
      end
      else begin
        O.load g (next_of (O.Ptr.node_exn node)) lnext;
        if
          O.cas g q.head ~expected:(O.Ptr.state node)
            ~desired:(O.Ptr.state lnext)
        then item_of (O.Ptr.node_exn lnext)
        else begin
          Backoff.once backoff;
          loop ()
        end
      end
    in
    loop ()

  (* Teardown is just dropping the roots: OrcGC cascades through the
     remaining chain (via the recursive list, not the program stack). *)
  let destroy q =
    O.with_guard q.orc @@ fun g ->
    O.store g q.head Link.Null;
    O.store g q.tail Link.Null

  let unreclaimed q = O.unreclaimed q.orc
  let flush q = O.flush q.orc
  let alloc q = q.alloc
end
