(** Epoch-based reclamation (Fraser [10], Hart et al. [13]) — the
    quiescence baseline.

    Threads announce the global epoch on [begin_op] and go quiescent on
    [end_op]; a node retired in epoch [e] is freed once every active
    thread has moved past it.  Protection is nearly free, but a single
    stalled reader blocks all reclamation: blocking retire, unbounded
    memory (Table 1).  Included as the performance ceiling the lock-free
    schemes are measured against. *)

module Make (N : Scheme_intf.NODE) : Scheme_intf.S with type node = N.t
