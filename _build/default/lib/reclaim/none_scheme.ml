(** Degenerate schemes used as experimental controls.

    [Leak] never frees: the "no reclamation" series in the paper's plots
    (the performance ceiling — zero reclamation overhead, unbounded
    memory).  [Unsafe] frees at retire time, which is exactly the bug all
    real schemes exist to prevent; the negative stress tests use it to
    prove that the {!Memdom} substrate actually detects use-after-free
    (i.e. that the green tests of real schemes are meaningful). *)

open Atomicx

module Leak (N : Scheme_intf.NODE) : Scheme_intf.S with type node = N.t = struct
  type node = N.t

  type t = {
    alloc : Memdom.Alloc.t;
    hps : int;
    retired : node list ref array;
    pending : int Atomic.t;
  }

  let name = "leak"
  let max_hps t = t.hps

  let create ?(max_hps = 8) alloc =
    {
      alloc;
      hps = max_hps;
      retired = Array.init Registry.max_threads (fun _ -> ref []);
      pending = Atomic.make 0;
    }

  let begin_op _ ~tid:_ = ()
  let end_op _ ~tid:_ = ()
  let get_protected _ ~tid:_ ~idx:_ link = Link.get link
  let protect_raw _ ~tid:_ ~idx:_ _ = ()
  let copy_protection _ ~tid:_ ~src:_ ~dst:_ = ()
  let clear _ ~tid:_ ~idx:_ = ()

  let retire t ~tid n =
    Memdom.Hdr.mark_retired (N.hdr n);
    ignore (Atomic.fetch_and_add t.pending 1);
    t.retired.(tid) := n :: !(t.retired.(tid))

  let unreclaimed t = Atomic.get t.pending

  (* Quiesced: everything retired is reclaimable by definition. *)
  let flush t =
    for tid = 0 to Registry.max_threads - 1 do
      List.iter
        (fun n ->
          Memdom.Alloc.free t.alloc (N.hdr n);
          ignore (Atomic.fetch_and_add t.pending (-1)))
        !(t.retired.(tid));
      t.retired.(tid) := []
    done
end

module Unsafe (N : Scheme_intf.NODE) : Scheme_intf.S with type node = N.t = struct
  type node = N.t
  type t = { alloc : Memdom.Alloc.t; hps : int }

  let name = "unsafe"
  let max_hps t = t.hps
  let create ?(max_hps = 8) alloc = { alloc; hps = max_hps }
  let begin_op _ ~tid:_ = ()
  let end_op _ ~tid:_ = ()
  let get_protected _ ~tid:_ ~idx:_ link = Link.get link
  let protect_raw _ ~tid:_ ~idx:_ _ = ()
  let copy_protection _ ~tid:_ ~src:_ ~dst:_ = ()
  let clear _ ~tid:_ ~idx:_ = ()

  let retire t ~tid:_ n =
    Memdom.Hdr.mark_retired (N.hdr n);
    Memdom.Alloc.free t.alloc (N.hdr n)

  let unreclaimed _ = 0
  let flush _ = ()
end
