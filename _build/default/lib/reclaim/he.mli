(** Hazard eras (Ramalhete & Correia [25]) — era baseline.

    Publishes *eras* instead of pointers: an object whose lifetime
    interval [birth_era, death_era] contains a published era is pinned.
    Cheaper protection than HP when the era has not moved, at the cost of
    the much larger O(#L·H·t²) bound (Table 1).  Note
    {!Scheme_intf.S.copy_protection} must copy the published era, not
    republish the current one — a fresh era does not cover an object
    already retired under an older era. *)

module Make (N : Scheme_intf.NODE) : Scheme_intf.S with type node = N.t
