(** 2GEIBR — two-global-epoch interval-based reclamation (Wen et
    al. [30]), the IBR flavour the paper credits with lock-free progress
    and bounded memory (Table 1).

    Each thread reserves an era interval [lo, hi]: [begin_op] pins both
    ends and every validated read extends [hi]; a retired node whose
    lifetime interval overlaps no reservation is freed.  Same
    O(#L·H·t²)-class bound as hazard eras. *)

module Make (N : Scheme_intf.NODE) : Scheme_intf.S with type node = N.t
