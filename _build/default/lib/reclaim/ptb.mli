(** Pass-the-buck (Herlihy, Luchangco & Moir [14]) — manual baseline.

    Guards are hazard slots; [liberate] hands a trapped value to its
    guard through a versioned handoff slot (the paper's DWCAS — here a
    CAS on an immutable [(value, version)] box).  The liberating thread
    still gathers a list proportional to the trapped population, keeping
    the O(Ht²) bound (Table 1); PTP sharpens the same handover idea into
    a linear bound by pushing pointers forward instead of gathering. *)

module Make (N : Scheme_intf.NODE) : Scheme_intf.S with type node = N.t
