(** Degenerate schemes used as experimental controls.

    {!Leak} never frees: the "no reclamation" series in the paper's
    plots — the performance ceiling with unbounded memory.  {!Unsafe}
    frees at retire time, which is exactly the bug all real schemes
    exist to prevent; the negative tests use it to prove the {!Memdom}
    substrate detects use-after-free (i.e. that green tests of real
    schemes are meaningful). *)

module Leak (N : Scheme_intf.NODE) : Scheme_intf.S with type node = N.t
module Unsafe (N : Scheme_intf.NODE) : Scheme_intf.S with type node = N.t
