(** Hazard pointers (Michael [19]) — manual baseline scheme.

    Protection publishes the pointer in a per-thread hazard slot and
    re-validates against the source link.  Retiring pushes the node onto
    a thread-local retired list; once the list exceeds a scan threshold
    the thread scans all published hazards and frees every retired node
    not currently protected.  Memory bound: each thread can hold a
    retired list proportional to [H*t], hence O(Ht²) unreclaimed overall
    — the quadratic bound the paper's PTP improves on (Table 1). *)

module Make (N : Scheme_intf.NODE) : Scheme_intf.S with type node = N.t
