lib/reclaim/ebr.mli: Scheme_intf
