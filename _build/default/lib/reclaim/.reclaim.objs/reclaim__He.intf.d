lib/reclaim/he.mli: Scheme_intf
