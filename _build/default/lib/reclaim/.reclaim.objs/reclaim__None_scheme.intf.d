lib/reclaim/none_scheme.mli: Scheme_intf
