lib/reclaim/scheme_intf.ml: Atomicx Memdom
