lib/reclaim/he.ml: Array Atomic Atomicx Link List Memdom Padded Registry Scheme_intf
