lib/reclaim/none_scheme.ml: Array Atomic Atomicx Link List Memdom Registry Scheme_intf
