lib/reclaim/ibr.mli: Scheme_intf
