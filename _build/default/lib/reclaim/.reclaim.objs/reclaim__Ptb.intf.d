lib/reclaim/ptb.mli: Scheme_intf
