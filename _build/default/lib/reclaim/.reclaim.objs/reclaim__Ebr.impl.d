lib/reclaim/ebr.ml: Array Atomic Atomicx Link List Memdom Registry Scheme_intf
