lib/reclaim/ptb.ml: Array Atomic Atomicx Link List Memdom Padded Queue Registry Scheme_intf
