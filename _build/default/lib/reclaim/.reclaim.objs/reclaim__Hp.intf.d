lib/reclaim/hp.mli: Scheme_intf
