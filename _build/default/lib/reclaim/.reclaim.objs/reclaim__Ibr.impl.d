lib/reclaim/ibr.ml: Array Atomic Atomicx Link List Memdom Registry Scheme_intf
